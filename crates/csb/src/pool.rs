//! Persistent broadcast worker pool and block-SoA chain shards.
//!
//! The CSB's chains are partitioned once, at construction, into
//! [`Shard`]s — contiguous runs of chains that are *owned* (not borrowed)
//! by whoever is executing on them. Program broadcast moves each shard to
//! a long-lived worker thread through a channel, the worker runs the whole
//! microop program on its chains, and the shard (with its partial
//! reduction sums) moves back. Ownership transfer is what lets the pool
//! outlive any single call without scoped threads or `unsafe`: sending a
//! `Shard` is a pointer-width move, and the `Csb` gets its chains back at
//! the join.
//!
//! Within a shard, chains are packed [`BLOCK_LANES`] at a time into
//! [`ChainBlock`]s (structure-of-arrays, see the `block` module), so the
//! broadcast hot loop runs each lowered microop over a whole block of
//! chains with auto-vectorizable contiguous-slice kernels.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::block::{ChainBlock, Lanes, BLOCK_LANES};
use crate::chain::{Chain, ChainState};
use crate::geometry::SUBARRAY_COLS;
use crate::program::PlanOp;

/// A contiguous run of chains (packed into [`ChainBlock`]s) plus their
/// window masks, the block-level active list, and a reusable partial-sum
/// scratch buffer.
///
/// `windows[b][l]` is the active-column mask of lane `l` of block `b`;
/// padding lanes of a trailing partial block keep a permanent 0 mask.
/// `active_blocks` holds indices of blocks with at least one non-gated
/// lane; fully-masked blocks are power-gated and skipped (Section V-F),
/// and kernels blend per lane so gated lanes inside a live block are
/// never mutated either. The list is rebuilt lazily — any window rewrite
/// marks it dirty and [`Shard::run`] refreshes it before broadcasting —
/// so it can never go stale when masks change between programs.
///
/// `sums` accumulates one window-masked popcount partial sum per
/// [`PlanOp::ReduceTags`] in the program, in program order, and is
/// cleared and refilled in place on every run — no per-microop
/// allocation.
#[derive(Debug, Clone, Default)]
pub(crate) struct Shard {
    blocks: Vec<ChainBlock>,
    windows: Vec<Lanes>,
    active_blocks: Vec<u32>,
    active_dirty: bool,
    nchains: usize,
    /// Logical block → physical block. Identity at construction; the
    /// fault layer's quarantine-and-remap repoints whole logical blocks
    /// at spare physical blocks, so every per-chain accessor resolves
    /// through this one-word indirection.
    block_map: Vec<u32>,
    /// Physical indices of provisioned-but-unused spare blocks. Spares
    /// keep all-zero windows (power-gated, padding-lane invariant) until
    /// a remap brings them live.
    spare_free: Vec<u32>,
    /// Physical blocks retired by quarantine; their windows are forced
    /// to zero forever, so broadcasts never visit them again.
    quarantined: Vec<u32>,
    /// True once the fault layer armed this shard: broadcasts run the
    /// parity-fused kernel instantiation and injection sites queue
    /// dirty events. All plumbing below travels *with* the shard through
    /// worker ownership transfer — a worker thread maintains parity and
    /// events on the shard it owns with no shared state.
    parity_on: bool,
    /// Physical block indices with a pending parity event (an injector
    /// touched them since the last drain), deduplicated by
    /// `event_queued`. This is the O(touched) dirty set the detector
    /// scans instead of rehashing every block.
    parity_events: Vec<u32>,
    /// One dedup flag per physical block for `parity_events`.
    event_queued: Vec<bool>,
    /// Round-robin cursor for wear-leveled spare selection.
    spare_rr: usize,
    pub sums: Vec<u64>,
}

impl Shard {
    /// A zero-initialized shard of `len` chains with fully-open windows.
    /// The trailing block's padding lanes (when `len` is not a multiple of
    /// [`BLOCK_LANES`]) get a permanent zero window.
    pub fn new(len: usize) -> Self {
        let nblocks = len.div_ceil(BLOCK_LANES);
        let mut windows = vec![[0u32; BLOCK_LANES]; nblocks];
        for local in 0..len {
            windows[local / BLOCK_LANES][local % BLOCK_LANES] = u32::MAX;
        }
        Self {
            blocks: vec![ChainBlock::new(); nblocks],
            windows,
            active_blocks: (0..nblocks as u32).collect(),
            active_dirty: false,
            nchains: len,
            block_map: (0..nblocks as u32).collect(),
            spare_free: Vec::new(),
            quarantined: Vec::new(),
            parity_on: false,
            parity_events: Vec::new(),
            event_queued: vec![false; nblocks],
            spare_rr: 0,
            sums: Vec::new(),
        }
    }

    /// Resolves a local chain index into its (physical block, lane)
    /// coordinates through the remap table.
    #[inline]
    fn loc(&self, local: usize) -> (usize, usize) {
        (
            self.block_map[local / BLOCK_LANES] as usize,
            local % BLOCK_LANES,
        )
    }

    /// Number of chains in this shard (excluding block padding lanes).
    pub fn len(&self) -> usize {
        self.nchains
    }

    /// The window mask of local chain `local`.
    pub fn window(&self, local: usize) -> u32 {
        let (b, l) = self.loc(local);
        self.windows[b][l]
    }

    /// Rewrites the window mask of local chain `local`, marking the
    /// block-level active list for a rebuild before the next broadcast.
    pub fn set_window(&mut self, local: usize, mask: u32) {
        debug_assert!(local < self.nchains, "chain {local} out of shard");
        let (b, l) = self.loc(local);
        if self.windows[b][l] != mask {
            self.windows[b][l] = mask;
            self.active_dirty = true;
        }
    }

    /// Rebuilds `active_blocks` from the current window masks if any mask
    /// changed since the last rebuild.
    fn refresh_active(&mut self) {
        if !self.active_dirty {
            return;
        }
        self.active_blocks.clear();
        for (b, win) in self.windows.iter().enumerate() {
            if win.iter().any(|&w| w != 0) {
                self.active_blocks.push(b as u32);
            }
        }
        self.active_dirty = false;
    }

    /// Number of blocks the next broadcast will visit (test/bring-up
    /// observability for the lazy active-list rebuild).
    #[cfg(test)]
    pub fn active_block_count(&mut self) -> usize {
        self.refresh_active();
        self.active_blocks.len()
    }

    /// Runs a whole lowered microop program over this shard's active
    /// blocks, leaving one partial sum per `ReduceTags` op in `self.sums`.
    ///
    /// Every microop except `ReduceTags` is chain-local, so the only
    /// cross-chain synchronization a program needs is the harvest of
    /// `sums` after this returns — one join per program, not per microop.
    ///
    /// Iteration is block-outer, op-inner: each block runs the *whole*
    /// program while its state is cache-resident, and each op runs as one
    /// vectorized sweep over the block's [`BLOCK_LANES`] chains.
    /// Reduction order across chains changes, but the partial sums are
    /// plain additions, so the totals are identical.
    /// Branches once per program on the shard's parity mode so the hot
    /// loop runs a fully monomorphized kernel set: the clean path stays
    /// byte-for-byte the pre-parity kernels, the fault path fuses the
    /// per-row parity fold into every write.
    pub fn run(&mut self, ops: &[PlanOp]) {
        self.refresh_active();
        if self.parity_on {
            self.run_plan::<true>(ops);
        } else {
            self.run_plan::<false>(ops);
        }
    }

    fn run_plan<const PARITY: bool>(&mut self, ops: &[PlanOp]) {
        let Shard {
            blocks,
            windows,
            active_blocks,
            sums,
            ..
        } = self;
        sums.clear();
        sums.resize(
            ops.iter()
                .filter(|op| matches!(op, PlanOp::ReduceTags { .. }))
                .count(),
            0,
        );
        for &b in active_blocks.iter() {
            let block = &mut blocks[b as usize];
            let win = &windows[b as usize];
            let mut k = 0;
            for op in ops {
                if matches!(op, PlanOp::ReduceTags { .. }) {
                    if let Some(r) = block.execute_plan::<PARITY>(op, win) {
                        sums[k] += r;
                    }
                    k += 1;
                } else {
                    block.execute_plan::<PARITY>(op, win);
                }
            }
        }
    }

    // ---- per-chain access, delegating into the owning block's lane ----

    /// Materializes local chain `local` as a scalar [`Chain`]
    /// (reference-model view; test/bring-up hook, not a hot path).
    pub fn chain(&self, local: usize) -> Chain {
        let (b, l) = self.loc(local);
        self.blocks[b].to_chain(l)
    }

    /// Tag bits of subarray `s` of local chain `local`.
    pub fn tags(&self, local: usize, s: usize) -> u32 {
        let (b, l) = self.loc(local);
        self.blocks[b].tags(l, s)
    }

    /// Overwrites the tag bits of subarray `s` of local chain `local`.
    pub fn set_tags(&mut self, local: usize, s: usize, v: u32) {
        let (b, l) = self.loc(local);
        self.blocks[b].set_tags(l, s, v);
    }

    /// Accumulator bits of subarray `s` of local chain `local`.
    pub fn acc(&self, local: usize, s: usize) -> u32 {
        let (b, l) = self.loc(local);
        self.blocks[b].acc(l, s)
    }

    /// Overwrites the accumulator bits of subarray `s` of local chain
    /// `local`.
    pub fn set_acc(&mut self, local: usize, s: usize, v: u32) {
        let (b, l) = self.loc(local);
        self.blocks[b].set_acc(l, s, v);
    }

    /// Row `r` of subarray `s` of local chain `local`.
    pub fn row(&self, local: usize, s: usize, r: usize) -> u32 {
        let (b, l) = self.loc(local);
        self.blocks[b].row(l, s, r)
    }

    /// Masked write into row `r` of subarray `s` of local chain `local`.
    pub fn write_row(&mut self, local: usize, s: usize, r: usize, data: u32, mask: u32) {
        let (b, l) = self.loc(local);
        self.blocks[b].write_row(l, s, r, data, mask);
    }

    /// Deposits one element into register `reg`, column `col` of local
    /// chain `local`.
    pub fn write_element(&mut self, local: usize, reg: usize, col: usize, value: u32) {
        let (b, l) = self.loc(local);
        self.blocks[b].write_element(l, reg, col, value);
    }

    /// Reads one element of register `reg`, column `col` of local chain
    /// `local`.
    pub fn read_element(&self, local: usize, reg: usize, col: usize) -> u32 {
        let (b, l) = self.loc(local);
        self.blocks[b].read_element(l, reg, col)
    }

    /// Bulk-reads register `reg` of local chain `local` across all 32
    /// columns (one 32×32 transpose).
    pub fn read_column_block(&self, local: usize, reg: usize) -> [u32; SUBARRAY_COLS] {
        let (b, l) = self.loc(local);
        self.blocks[b].read_column_block(l, reg)
    }

    /// Bulk-writes register `reg` of local chain `local` at the columns
    /// selected by `col_mask` (one 32×32 transpose).
    pub fn write_column_block(
        &mut self,
        local: usize,
        reg: usize,
        values: &[u32; SUBARRAY_COLS],
        col_mask: u32,
    ) {
        let (b, l) = self.loc(local);
        self.blocks[b].write_column_block(l, reg, values, col_mask);
    }

    /// Packs every chain of the shard into [`ChainState`]s, in local chain
    /// order — the context-save fan-out unit.
    pub fn save_states(&self) -> Vec<ChainState> {
        (0..self.nchains)
            .map(|local| {
                let (b, l) = self.loc(local);
                self.blocks[b].save_state(l)
            })
            .collect()
    }

    /// Unpacks one [`ChainState`] per chain, in local chain order — the
    /// inverse of [`Shard::save_states`].
    ///
    /// # Panics
    ///
    /// Panics if `states` does not hold exactly one state per chain.
    pub fn load_states(&mut self, states: &[ChainState]) {
        assert_eq!(states.len(), self.nchains, "snapshot/shard length mismatch");
        for (local, state) in states.iter().enumerate() {
            let (b, l) = self.loc(local);
            self.blocks[b].load_state(l, state);
        }
    }

    // ---- fault layer: spares, quarantine and whole-block remap --------

    /// Number of *logical* blocks (the ones chains map onto; excludes
    /// spares and quarantined silicon).
    pub fn nblocks_logical(&self) -> usize {
        self.block_map.len()
    }

    /// Physical block currently backing logical block `lb`.
    pub fn physical_of(&self, lb: usize) -> usize {
        self.block_map[lb] as usize
    }

    /// Logical block mapped onto physical block `phys`, if any (`None`
    /// for quarantined or unused-spare silicon).
    pub fn logical_of(&self, phys: usize) -> Option<usize> {
        self.block_map.iter().position(|&p| p as usize == phys)
    }

    /// Arms incremental parity on this shard: every block's per-row
    /// parity words are rebuilt from current data (the one full pass,
    /// paid at arming time only), and from here on broadcasts run the
    /// parity-fused kernels and injectors queue dirty events.
    pub fn enable_parity(&mut self) {
        for b in self.blocks.iter_mut() {
            b.rebuild_parity();
        }
        self.event_queued = vec![false; self.blocks.len()];
        self.parity_events.clear();
        self.parity_on = true;
    }

    /// Records that an injector disturbed physical block `phys`, for the
    /// detector's next O(touched) dirty-set drain.
    fn queue_parity_event(&mut self, phys: usize) {
        if self.parity_on && !self.event_queued[phys] {
            self.event_queued[phys] = true;
            self.parity_events.push(phys as u32);
        }
    }

    /// Takes the pending dirty set — physical block indices injectors
    /// touched since the last drain. Empty (and allocation-free) in the
    /// steady fault-free state.
    pub fn drain_parity_events(&mut self) -> Vec<u32> {
        for &p in &self.parity_events {
            self.event_queued[p as usize] = false;
        }
        std::mem::take(&mut self.parity_events)
    }

    /// Syndrome word of physical block `phys` (0 = no parity mismatch).
    pub fn syndrome_phys(&self, phys: usize) -> u64 {
        self.blocks[phys].syndrome()
    }

    /// `(subarray, row)` mismatch coordinates of physical block `phys`.
    pub fn struck_rows_phys(&self, phys: usize) -> Vec<(u8, u8)> {
        self.blocks[phys].struck_rows()
    }

    /// Test hook: every *logical* block's parity is consistent with its
    /// data (quarantined blocks keep their stale mismatch by design).
    pub fn parity_consistent_logical(&self) -> bool {
        self.block_map
            .iter()
            .all(|&p| self.blocks[p as usize].parity_consistent())
    }

    /// Transient strike into logical block `lb`.
    pub fn flip_bits_logical(&mut self, lb: usize, lane: usize, s: usize, r: usize, mask: u32) {
        let phys = self.physical_of(lb);
        self.blocks[phys].flip_bits(lane, s, r, mask);
        self.queue_parity_event(phys);
    }

    /// Stuck-at assertion into logical block `lb`; true if state changed.
    pub fn force_bits_logical(
        &mut self,
        lb: usize,
        lane: usize,
        s: usize,
        r: usize,
        mask: u32,
        value: bool,
    ) -> bool {
        let phys = self.physical_of(lb);
        let changed = self.blocks[phys].force_bits(lane, s, r, mask, value);
        if changed {
            self.queue_parity_event(phys);
        }
        changed
    }

    /// Dead-block scramble of logical block `lb`.
    pub fn scramble_logical(&mut self, lb: usize, seed: u32) {
        let phys = self.physical_of(lb);
        self.blocks[phys].scramble(seed);
        self.queue_parity_event(phys);
    }

    /// Provisions `n` spare physical blocks. Spares start all-zero with
    /// all-zero windows, so they are power-gated padding until a remap
    /// brings them live — broadcasts never visit them.
    pub fn add_spares(&mut self, n: usize) {
        for _ in 0..n {
            let phys = self.blocks.len() as u32;
            self.blocks.push(ChainBlock::new());
            self.windows.push([0u32; BLOCK_LANES]);
            self.spare_free.push(phys);
            self.event_queued.push(false);
        }
    }

    /// Unused spares remaining.
    pub fn spares_free(&self) -> usize {
        self.spare_free.len()
    }

    /// Physical blocks retired so far.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.len()
    }

    /// Quarantines the physical block behind logical block `lb` and
    /// remaps `lb` onto a spare, or returns `None` when this shard is out
    /// of spares (the caller must treat the machine as degraded).
    ///
    /// Spare selection is wear-leveled: a round-robin cursor rotates
    /// through the free list instead of always consuming the lowest
    /// index, so repeated quarantine/re-provision cycles spread remap
    /// wear across the shard's spare silicon.
    ///
    /// The spare inherits a best-effort copy of the (possibly corrupted)
    /// data plus the lane windows — so power-gating state and padding
    /// lanes carry over — and the retired block's windows are forced to
    /// zero forever, excluding it from every future broadcast exactly
    /// like a fully-masked (power-gated) block. The spare's parity is
    /// rebuilt from the copied data (accepting it as ground truth — the
    /// caller restores a clean checkpoint through the write path next),
    /// so the inherited mismatch does not re-flag the remapped block.
    pub fn remap_logical(&mut self, lb: usize) -> Option<usize> {
        if self.spare_free.is_empty() {
            return None;
        }
        let idx = self.spare_rr % self.spare_free.len();
        let new = self.spare_free.remove(idx) as usize;
        self.spare_rr = self.spare_rr.wrapping_add(1);
        let old = self.physical_of(lb);
        self.blocks[new] = self.blocks[old].clone();
        if self.parity_on {
            self.blocks[new].rebuild_parity();
        }
        self.windows[new] = self.windows[old];
        self.windows[old] = [0u32; BLOCK_LANES];
        self.block_map[lb] = new as u32;
        self.quarantined.push(old as u32);
        self.active_dirty = true;
        Some(new)
    }
}

/// A closure run on one owned shard by a worker thread. Results travel
/// through whatever channel the closure captures; the shard itself moves
/// back through the pool.
pub(crate) type ShardFn = Box<dyn FnOnce(&mut Shard) + Send + 'static>;

/// What a worker does with the shard it receives: broadcast a lowered
/// microop program over it, or run an arbitrary owned closure (context
/// snapshot/restore uses the latter).
enum Task {
    Broadcast(Arc<Vec<PlanOp>>),
    Apply(ShardFn),
}

/// One unit of work: a shard to own and the task to run on it.
struct Job {
    shard: Shard,
    task: Task,
}

struct Worker {
    /// `None` once the pool starts shutting down.
    tx: Option<Sender<Job>>,
    rx: Receiver<Shard>,
    handle: Option<JoinHandle<()>>,
}

/// Long-lived worker threads for the broadcast fan-out.
///
/// Workers are spawned lazily on first use and live until the pool (and
/// with it the owning [`Csb`](crate::Csb)) is dropped, so the per-call
/// cost of a broadcast is two channel transfers per shard instead of a
/// thread spawn + join per microop.
pub(crate) struct WorkerPool {
    workers: Vec<Worker>,
}

impl WorkerPool {
    /// An empty pool; threads spawn on the first [`WorkerPool::run`].
    pub fn new() -> Self {
        Self {
            workers: Vec::new(),
        }
    }

    /// Number of worker threads spawned so far.
    pub fn spawned(&self) -> usize {
        self.workers.len()
    }

    fn ensure(&mut self, n: usize) {
        while self.workers.len() < n {
            let (job_tx, job_rx) = channel::<Job>();
            let (res_tx, res_rx) = channel::<Shard>();
            let handle = std::thread::Builder::new()
                .name(format!("csb-broadcast-{}", self.workers.len()))
                .spawn(move || {
                    while let Ok(mut job) = job_rx.recv() {
                        match job.task {
                            Task::Broadcast(ops) => job.shard.run(&ops),
                            Task::Apply(f) => f(&mut job.shard),
                        }
                        if res_tx.send(job.shard).is_err() {
                            break;
                        }
                    }
                })
                .expect("failed to spawn CSB broadcast worker");
            self.workers.push(Worker {
                tx: Some(job_tx),
                rx: res_rx,
                handle: Some(handle),
            });
        }
    }

    /// Fans the program out once over all shards and joins. Each shard is
    /// moved to its worker, run through every microop locally, and moved
    /// back with its partial sums filled in.
    pub fn run(&mut self, shards: &mut [Shard], ops: &Arc<Vec<PlanOp>>) {
        self.dispatch(shards, |_| Task::Broadcast(Arc::clone(ops)));
    }

    /// Runs one owned closure per shard concurrently — the context
    /// snapshot/restore fan-out. `make(i)` builds the closure for shard
    /// `i`; any results travel through channels the closures capture.
    pub fn apply(&mut self, shards: &mut [Shard], mut make: impl FnMut(usize) -> ShardFn) {
        self.dispatch(shards, |i| Task::Apply(make(i)));
    }

    fn dispatch(&mut self, shards: &mut [Shard], mut task: impl FnMut(usize) -> Task) {
        self.ensure(shards.len());
        for (i, (slot, worker)) in shards.iter_mut().zip(&self.workers).enumerate() {
            let job = Job {
                shard: std::mem::take(slot),
                task: task(i),
            };
            worker
                .tx
                .as_ref()
                .expect("worker pool is shut down")
                .send(job)
                .expect("CSB broadcast worker exited");
        }
        for (slot, worker) in shards.iter_mut().zip(&self.workers) {
            *slot = worker.rx.recv().expect("CSB broadcast worker panicked");
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("spawned", &self.spawned())
            .finish()
    }
}

/// Cloning a CSB must not share worker threads; the clone gets a fresh
/// pool that lazily spawns its own.
impl Clone for WorkerPool {
    fn clone(&self) -> Self {
        Self::new()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Dropping every sender ends each worker's recv loop...
        for w in &mut self.workers {
            w.tx.take();
        }
        // ...then the threads can be joined.
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microop::{MicroOp, Probe, TagDest, TagMode};
    use crate::program::lower;

    fn sample_shard(len: usize) -> Shard {
        let mut s = Shard::new(len);
        for c in 0..len {
            for col in 0..Chain::LANES {
                s.write_element(c, 1, col, (c * 37 + col) as u32);
            }
        }
        s
    }

    fn sample_ops() -> Vec<MicroOp> {
        vec![
            MicroOp::Search {
                probes: vec![Probe::row(0, 1, true)],
                gates: vec![],
                dest: TagDest::Tags,
                mode: TagMode::Set,
            },
            MicroOp::ReduceTags { subarray: 0 },
            MicroOp::TagCombine {
                src: 0,
                dst: 1,
                op: TagMode::Set,
            },
            MicroOp::ReduceTags { subarray: 1 },
        ]
    }

    fn sample_plan() -> Vec<PlanOp> {
        sample_ops().iter().map(lower).collect()
    }

    /// Runs the original microops over materialized scalar chains — the
    /// reference the block-backed shard must match bit for bit.
    fn reference_run(shard: &Shard, ops: &[MicroOp]) -> (Vec<Chain>, Vec<u64>) {
        let mut chains: Vec<Chain> = (0..shard.len()).map(|c| shard.chain(c)).collect();
        let mut sums = Vec::new();
        for op in ops {
            let mut sum = 0u64;
            for (c, chain) in chains.iter_mut().enumerate() {
                let w = shard.window(c);
                if w == 0 {
                    continue; // power-gated
                }
                if let Some(r) = chain.execute(op, w) {
                    sum += u64::from(r);
                }
            }
            if matches!(op, MicroOp::ReduceTags { .. }) {
                sums.push(sum);
            }
        }
        (chains, sums)
    }

    #[test]
    fn shard_run_matches_direct_chain_execution() {
        // 19 chains: one full block plus a padded partial block.
        let mut shard = sample_shard(19);
        let (want_chains, want_sums) = reference_run(&shard, &sample_ops());

        shard.run(&sample_plan());

        assert_eq!(shard.sums, want_sums);
        for (c, want) in want_chains.iter().enumerate() {
            assert_eq!(&shard.chain(c), want, "chain {c}");
        }
    }

    #[test]
    fn shard_run_skips_inactive_chains() {
        let mut shard = sample_shard(4);
        shard.set_window(2, 0);
        let before = shard.chain(2);
        shard.run(&sample_plan());
        assert_eq!(shard.chain(2), before, "power-gated chain must not change");
    }

    #[test]
    fn window_rewrites_refresh_the_active_list_between_runs() {
        // Two full blocks; regression test for the stale-active-list bug:
        // masking chains to zero *after* setup must be honored by the next
        // broadcast, and re-opening them must bring their block back.
        let mut shard = sample_shard(2 * BLOCK_LANES);
        assert_eq!(shard.active_block_count(), 2);

        // Gate every chain of block 1.
        for c in BLOCK_LANES..2 * BLOCK_LANES {
            shard.set_window(c, 0);
        }
        let before: Vec<Chain> = (BLOCK_LANES..2 * BLOCK_LANES)
            .map(|c| shard.chain(c))
            .collect();
        shard.run(&sample_plan());
        assert_eq!(shard.active_block_count(), 1, "gated block must drop out");
        for (i, want) in before.iter().enumerate() {
            let c = BLOCK_LANES + i;
            assert_eq!(&shard.chain(c), want, "gated chain {c} must not change");
        }

        // Re-open one chain of block 1: the block rejoins the broadcast.
        shard.set_window(BLOCK_LANES, u32::MAX);
        assert_eq!(shard.active_block_count(), 2);
        let (want_chains, _) = reference_run(&shard, &sample_ops());
        shard.run(&sample_plan());
        assert_eq!(shard.chain(BLOCK_LANES), want_chains[BLOCK_LANES]);
    }

    #[test]
    fn save_states_round_trips_through_blocks() {
        let shard = sample_shard(BLOCK_LANES + 3);
        let states = shard.save_states();
        assert_eq!(states.len(), shard.len());
        let mut fresh = Shard::new(shard.len());
        fresh.load_states(&states);
        for c in 0..shard.len() {
            assert_eq!(fresh.chain(c), shard.chain(c), "chain {c}");
        }
        assert_eq!(fresh.save_states(), states);
    }

    #[test]
    fn pool_run_equals_serial_run_and_reuses_workers() {
        let ops = Arc::new(sample_plan());
        let mut pooled: Vec<Shard> = (0..4).map(|i| sample_shard(2 + i)).collect();
        let mut serial = pooled.clone();

        let mut pool = WorkerPool::new();
        pool.run(&mut pooled, &ops);
        pool.run(&mut pooled, &ops); // second dispatch reuses threads
        assert_eq!(pool.spawned(), 4);

        for s in serial.iter_mut() {
            s.run(&ops);
            s.run(&ops);
        }
        for (p, s) in pooled.iter().zip(&serial) {
            assert_eq!(p.sums, s.sums);
            for c in 0..p.len() {
                assert_eq!(p.chain(c), s.chain(c));
            }
        }
    }
}

//! Block-SoA chain kernels: the vectorized broadcast hot path.
//!
//! A [`ChainBlock`] packs [`BLOCK_LANES`] chains in structure-of-arrays
//! form: row `r` of subarray `s` across all chains of the block is one
//! contiguous `[u32; BLOCK_LANES]` (one 64-byte cache line), and the
//! per-subarray tag and accumulator registers are laid out the same way.
//! Every broadcast microop runs the identical operation on every chain,
//! so the lowered [`PlanOp`] interpreter becomes a set of tight loops
//! over those contiguous slices — shapes rustc/LLVM auto-vectorizes
//! without `unsafe` or nightly SIMD. This is the transform FPGA CAPP
//! reproductions use to get row-parallel throughput: lay the same
//! bit-slice of many processing elements contiguously so one wide
//! operation serves the whole row.
//!
//! Invariants (see DESIGN.md §13):
//!
//! * Lane `l` of a block holds the chain with local index
//!   `block * BLOCK_LANES + l`; chain counts that are not a multiple of
//!   `BLOCK_LANES` pad the last block with all-zero lanes whose window
//!   mask is permanently 0.
//! * A lane whose window mask is 0 is *never mutated* by a kernel — not
//!   even by `Set`-mode tag latches — so a block kernel is bit-exact
//!   with the scalar path that skips power-gated chains entirely
//!   (Section V-F), and padding lanes stay zero forever.
//! * Reduction partial sums are plain additions, so summing lanes in a
//!   different order than the chain-serial path yields identical totals.
//!
//! The scalar [`Chain`] keeps the one-chain-at-a-time implementation as
//! the reference model; the differential tests below (and the
//! `kernel-smoke` release gate) pin every kernel here bit-exact against
//! it.

use crate::bitmat::transpose32;
use crate::chain::{Chain, ChainState, META_ROWS};
use crate::geometry::{SUBARRAYS_PER_CHAIN, SUBARRAY_COLS};
use crate::microop::{TagDest, TagMode};
use crate::program::{PlanOp, PlanProbe, PlanWrite};
use crate::subarray::{DATA_ROWS, TOTAL_ROWS};

/// Chains per block: 16 `u32` row-slices = one 64-byte cache line.
pub const BLOCK_LANES: usize = 16;

/// One row-slice (or tag/acc/window-slice): the same word of every chain
/// in the block, contiguously.
pub(crate) type Lanes = [u32; BLOCK_LANES];

/// All-ones activity mask when the lane's window is non-zero, all-zeros
/// when the lane is power-gated — the branchless select the kernels use
/// to keep masked lanes byte-identical to the skipped scalar path.
#[inline]
fn lane_act(window: u32) -> u32 {
    0u32.wrapping_sub(u32::from(window != 0))
}

/// XOR-fold of a row-slice: the per-row parity word the write path
/// maintains. One u32 per `[u32; BLOCK_LANES]` cache line.
#[inline]
fn lane_fold(line: &Lanes) -> u32 {
    let mut f = 0u32;
    for &w in line {
        f ^= w;
    }
    f
}

/// Position-mixed hash of one row's parity mismatch, XOR-accumulated
/// into the block syndrome. `splitmix64` over (subarray, row, delta) so
/// mismatches on *different* rows can never cancel each other the way
/// raw deltas could; a mismatch that genuinely disappears (a transient
/// flipped back by a second identical strike) cancels exactly.
#[inline]
fn row_term_hash(s: usize, r: usize, delta: u32) -> u64 {
    if delta == 0 {
        return 0;
    }
    let mut z = ((s as u64) << 40) ^ ((r as u64) << 32) ^ u64::from(delta);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// [`BLOCK_LANES`] chains in structure-of-arrays layout.
///
/// `rows[s][r]` is row `r` of subarray `s` across the block's lanes;
/// `tags[s]`/`acc[s]` are the match registers of subarray `s` across the
/// lanes. All kernels take the block's window-slice (`win[l]` is lane
/// `l`'s active-column mask) and leave `win[l] == 0` lanes untouched.
///
/// # Incremental parity (DESIGN.md §15)
///
/// `parity[s][r]` is the XOR-fold of row-slice `rows[s][r]` as seen by
/// the *write path*: every legitimate mutation — a kernel row write, a
/// per-lane data-transfer write, a context-restore unpack — XOR-folds
/// the old and new cache line into it, so on a fault-free block
/// `parity[s][r] == lane_fold(rows[s][r])` at all times. The fault
/// injectors ([`ChainBlock::flip_bits`], [`ChainBlock::force_bits`],
/// [`ChainBlock::scramble`]) mutate row data *without* updating parity
/// (a strike bypasses the write path), creating a per-row mismatch that
/// subsequent legitimate writes provably preserve: a write updates the
/// data fold and the parity word by the same XOR delta, so the mismatch
/// survives until the block is quarantined — corruption is never
/// silently absorbed, even by a full overwrite of the struck row.
///
/// `syndrome` is the XOR of [`row_term_hash`] over every mismatching
/// row, maintained at the *injection sites only* (the single places
/// where a fold/parity divergence can change). Detection therefore
/// reads one word per block instead of rehashing its ~80 KB of state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ChainBlock {
    rows: [[Lanes; TOTAL_ROWS]; SUBARRAYS_PER_CHAIN],
    tags: [Lanes; SUBARRAYS_PER_CHAIN],
    acc: [Lanes; SUBARRAYS_PER_CHAIN],
    parity: [[u32; TOTAL_ROWS]; SUBARRAYS_PER_CHAIN],
    syndrome: u64,
}

impl Default for ChainBlock {
    fn default() -> Self {
        Self::new()
    }
}

impl ChainBlock {
    /// A zero-initialized block. All-zero parity words are consistent
    /// with the all-zero row data, so a fresh block is born clean.
    pub fn new() -> Self {
        Self {
            rows: [[[0; BLOCK_LANES]; TOTAL_ROWS]; SUBARRAYS_PER_CHAIN],
            tags: [[0; BLOCK_LANES]; SUBARRAYS_PER_CHAIN],
            acc: [[0; BLOCK_LANES]; SUBARRAYS_PER_CHAIN],
            parity: [[0; TOTAL_ROWS]; SUBARRAYS_PER_CHAIN],
            syndrome: 0,
        }
    }

    /// Executes one lowered microop across every lane of the block.
    /// Returns the window-masked tag popcount summed over the lanes for
    /// [`PlanOp::ReduceTags`], `None` otherwise. `Read` is a no-op here:
    /// row data is chain-local and consumers read block state after the
    /// program completes.
    ///
    /// `PARITY` monomorphizes the row-write kernels: `true` fuses the
    /// per-row XOR-fold parity update into every write loop (fault mode),
    /// `false` compiles the exact pre-parity kernels (clean mode keeps
    /// full speed). The branch is on a const, so each instantiation is
    /// branch-free.
    pub fn execute_plan<const PARITY: bool>(&mut self, op: &PlanOp, win: &Lanes) -> Option<u64> {
        match op {
            PlanOp::SearchOne { probe, dest, mode } => {
                let m = self.probe_match(probe, win);
                self.accumulate(probe.subarray as usize, &m, *dest, *mode, win);
                None
            }
            PlanOp::Step {
                probe,
                dest,
                mode,
                nwrites,
                writes,
            } => {
                let m = self.probe_match(probe, win);
                self.accumulate(probe.subarray as usize, &m, *dest, *mode, win);
                self.plan_write::<PARITY>(&writes[0], win);
                if *nwrites == 2 {
                    self.plan_write::<PARITY>(&writes[1], win);
                }
                None
            }
            PlanOp::Search {
                probes,
                gates,
                dest,
                mode,
            } => {
                let mut gate = [u32::MAX; BLOCK_LANES];
                for g in gates.iter() {
                    self.and_probe(g, &mut gate);
                }
                for p in probes.iter() {
                    let mut m = *win;
                    for l in 0..BLOCK_LANES {
                        m[l] &= gate[l];
                    }
                    self.and_probe(p, &mut m);
                    self.accumulate(p.subarray as usize, &m, *dest, *mode, win);
                }
                None
            }
            PlanOp::UpdateOne { write } => {
                self.plan_write::<PARITY>(write, win);
                None
            }
            PlanOp::UpdateTwo { writes } => {
                self.plan_write::<PARITY>(&writes[0], win);
                self.plan_write::<PARITY>(&writes[1], win);
                None
            }
            PlanOp::Update { writes } => {
                debug_assert!(
                    distinct_subarrays(writes),
                    "update writes two rows of one subarray"
                );
                for w in writes.iter() {
                    self.plan_write::<PARITY>(w, win);
                }
                None
            }
            PlanOp::Read { .. } => None,
            PlanOp::Write {
                subarray,
                row,
                data,
                mask,
            } => {
                let r = &mut self.rows[*subarray as usize][*row as usize];
                if PARITY {
                    let mut delta = 0u32;
                    for l in 0..BLOCK_LANES {
                        let m = mask & win[l];
                        delta ^= (r[l] ^ data) & m;
                        r[l] = (r[l] & !m) | (data & m);
                    }
                    self.parity[*subarray as usize][*row as usize] ^= delta;
                } else {
                    for l in 0..BLOCK_LANES {
                        let m = mask & win[l];
                        r[l] = (r[l] & !m) | (data & m);
                    }
                }
                None
            }
            PlanOp::ReduceTags { subarray } => {
                let t = &self.tags[*subarray as usize];
                let mut sum = 0u64;
                for l in 0..BLOCK_LANES {
                    sum += u64::from((t[l] & win[l]).count_ones());
                }
                Some(sum)
            }
            PlanOp::TagCombine { src, dst, op } => {
                let m = self.tags[*src as usize];
                let d = &mut self.tags[*dst as usize];
                match op {
                    TagMode::Set => {
                        for l in 0..BLOCK_LANES {
                            let act = lane_act(win[l]);
                            d[l] = (m[l] & act) | (d[l] & !act);
                        }
                    }
                    TagMode::And => {
                        for l in 0..BLOCK_LANES {
                            d[l] &= m[l] | !win[l];
                        }
                    }
                    TagMode::Or => {
                        for l in 0..BLOCK_LANES {
                            d[l] |= m[l] & win[l];
                        }
                    }
                }
                None
            }
        }
    }

    /// ANDs the probe's branchless key matches into `m`: per key row,
    /// `m[l] &= rows[l] ^ inv` over the contiguous row-slice.
    #[inline]
    fn and_probe(&self, p: &PlanProbe, m: &mut Lanes) {
        let sub = &self.rows[p.subarray as usize];
        for k in 0..p.nkeys as usize {
            let row = &sub[p.rows[k] as usize];
            let inv = p.inv[k];
            for l in 0..BLOCK_LANES {
                m[l] &= row[l] ^ inv;
            }
        }
    }

    /// Window-masked single-probe match across the block's lanes.
    #[inline]
    fn probe_match(&self, p: &PlanProbe, win: &Lanes) -> Lanes {
        let mut m = *win;
        self.and_probe(p, &mut m);
        m
    }

    /// Latches a pre-window-masked match-slice `m` into the tags or
    /// accumulator of `sub`. `Set` blends through the lane-activity mask
    /// so power-gated lanes keep their register value, exactly like the
    /// scalar path that never executes them.
    #[inline]
    fn accumulate(&mut self, sub: usize, m: &Lanes, dest: TagDest, mode: TagMode, win: &Lanes) {
        let reg = match dest {
            TagDest::Tags => &mut self.tags[sub],
            TagDest::Acc => &mut self.acc[sub],
        };
        match mode {
            TagMode::Set => {
                for l in 0..BLOCK_LANES {
                    let act = lane_act(win[l]);
                    reg[l] = (m[l] & act) | (reg[l] & !act);
                }
            }
            TagMode::And => {
                for l in 0..BLOCK_LANES {
                    reg[l] &= m[l] | !win[l];
                }
            }
            TagMode::Or => {
                for l in 0..BLOCK_LANES {
                    reg[l] |= m[l];
                }
            }
        }
    }

    /// One lowered row write across the block: `sel` picks the per-lane
    /// column source (window, tags or accumulator of `src`). With
    /// `PARITY` the XOR-fold of the changed bits (`cols & !row` for a
    /// set, `cols & row` for a clear) folds into the row's parity word —
    /// one extra XOR per lane word, branchless alongside the write.
    #[inline]
    fn plan_write<const PARITY: bool>(&mut self, w: &PlanWrite, win: &Lanes) {
        let mut cols = *win;
        match w.sel {
            1 => {
                let t = &self.tags[w.src as usize];
                for l in 0..BLOCK_LANES {
                    cols[l] &= t[l];
                }
            }
            2 => {
                let a = &self.acc[w.src as usize];
                for l in 0..BLOCK_LANES {
                    cols[l] &= a[l];
                }
            }
            _ => {}
        }
        let row = &mut self.rows[w.subarray as usize][w.row as usize];
        if PARITY {
            let mut delta = 0u32;
            if w.value {
                for l in 0..BLOCK_LANES {
                    delta ^= cols[l] & !row[l];
                    row[l] |= cols[l];
                }
            } else {
                for l in 0..BLOCK_LANES {
                    delta ^= cols[l] & row[l];
                    row[l] &= !cols[l];
                }
            }
            self.parity[w.subarray as usize][w.row as usize] ^= delta;
        } else if w.value {
            for l in 0..BLOCK_LANES {
                row[l] |= cols[l];
            }
        } else {
            for l in 0..BLOCK_LANES {
                row[l] &= !cols[l];
            }
        }
    }

    // ----- per-lane access (data transfer, context switch, bring-up) ----

    /// Current tag bits of subarray `s` in lane `lane`.
    pub fn tags(&self, lane: usize, s: usize) -> u32 {
        self.tags[s][lane]
    }

    /// Overwrites the tag bits of subarray `s` in lane `lane`.
    pub fn set_tags(&mut self, lane: usize, s: usize, v: u32) {
        self.tags[s][lane] = v;
    }

    /// Current accumulator bits of subarray `s` in lane `lane`.
    pub fn acc(&self, lane: usize, s: usize) -> u32 {
        self.acc[s][lane]
    }

    /// Overwrites the accumulator bits of subarray `s` in lane `lane`.
    pub fn set_acc(&mut self, lane: usize, s: usize, v: u32) {
        self.acc[s][lane] = v;
    }

    /// Row `r` of subarray `s` in lane `lane`.
    pub fn row(&self, lane: usize, s: usize, r: usize) -> u32 {
        self.rows[s][r][lane]
    }

    /// Writes `data` into row `r` of subarray `s` in lane `lane` at the
    /// columns selected by `mask`. Maintains the row's parity word
    /// unconditionally — one extra XOR, negligible off the hot path.
    pub fn write_row(&mut self, lane: usize, s: usize, r: usize, data: u32, mask: u32) {
        let w = &mut self.rows[s][r][lane];
        let n = (*w & !mask) | (data & mask);
        self.parity[s][r] ^= *w ^ n;
        *w = n;
    }

    /// Deposits a 32-bit `value` into vector register `reg` at column
    /// `col` of lane `lane`, bit-slicing it across the 32 subarrays.
    pub fn write_element(&mut self, lane: usize, reg: usize, col: usize, value: u32) {
        assert!(reg < DATA_ROWS, "vector register {reg} out of range");
        assert!(col < SUBARRAY_COLS, "column {col} out of range");
        let bit = 1u32 << col;
        for (s, sub) in self.rows.iter_mut().enumerate() {
            let r = &mut sub[reg][lane];
            let n = if value >> s & 1 == 1 {
                *r | bit
            } else {
                *r & !bit
            };
            self.parity[s][reg] ^= *r ^ n;
            *r = n;
        }
    }

    /// Reads back the 32-bit element of register `reg` at column `col`
    /// of lane `lane`.
    pub fn read_element(&self, lane: usize, reg: usize, col: usize) -> u32 {
        assert!(reg < DATA_ROWS, "vector register {reg} out of range");
        assert!(col < SUBARRAY_COLS, "column {col} out of range");
        let mut v = 0u32;
        for (s, sub) in self.rows.iter().enumerate() {
            v |= (sub[reg][lane] >> col & 1) << s;
        }
        v
    }

    /// Bulk-reads vector register `reg` of lane `lane` across all 32
    /// columns through one 32×32 [`transpose32`] — the wide-transfer
    /// path of [`Chain::read_column_block`], lifted to the block layout.
    pub fn read_column_block(&self, lane: usize, reg: usize) -> [u32; SUBARRAY_COLS] {
        assert!(reg < DATA_ROWS, "vector register {reg} out of range");
        let mut m = [0u32; SUBARRAY_COLS];
        for (s, sub) in self.rows.iter().enumerate() {
            m[s] = sub[reg][lane];
        }
        transpose32(&mut m);
        m
    }

    /// Bulk-deposits up to 32 elements into register `reg` of lane
    /// `lane`, one per column selected by `col_mask`, through one 32×32
    /// [`transpose32`] — the inverse of [`ChainBlock::read_column_block`].
    pub fn write_column_block(
        &mut self,
        lane: usize,
        reg: usize,
        values: &[u32; SUBARRAY_COLS],
        col_mask: u32,
    ) {
        assert!(reg < DATA_ROWS, "vector register {reg} out of range");
        let mut m = *values;
        transpose32(&mut m);
        for (s, sub) in self.rows.iter_mut().enumerate() {
            let r = &mut sub[reg][lane];
            let n = (*r & !col_mask) | (m[s] & col_mask);
            self.parity[s][reg] ^= *r ^ n;
            *r = n;
        }
    }

    /// Packs lane `lane` into a [`ChainState`] — the same image
    /// [`Chain::save_state`] produces, so context switches through the
    /// block layout round-trip bit-exactly against the scalar model.
    pub fn save_state(&self, lane: usize) -> ChainState {
        let mut state = ChainState::zeroed();
        for r in 0..DATA_ROWS {
            state.regs[r] = self.read_column_block(lane, r);
        }
        for s in 0..SUBARRAYS_PER_CHAIN {
            for m in 0..META_ROWS {
                state.meta[s][m] = self.rows[s][DATA_ROWS + m][lane];
            }
            state.tags[s] = self.tags[s][lane];
            state.acc[s] = self.acc[s][lane];
        }
        state
    }

    /// Unpacks a [`ChainState`] into lane `lane` — the inverse of
    /// [`ChainBlock::save_state`].
    pub fn load_state(&mut self, lane: usize, state: &ChainState) {
        for r in 0..DATA_ROWS {
            self.write_column_block(lane, r, &state.regs[r], u32::MAX);
        }
        for s in 0..SUBARRAYS_PER_CHAIN {
            for m in 0..META_ROWS {
                let w = &mut self.rows[s][DATA_ROWS + m][lane];
                self.parity[s][DATA_ROWS + m] ^= *w ^ state.meta[s][m];
                *w = state.meta[s][m];
            }
            self.tags[s][lane] = state.tags[s];
            self.acc[s][lane] = state.acc[s];
        }
    }

    /// Materializes lane `lane` as a scalar [`Chain`] (reference-model
    /// view; test/bring-up hook, not a hot path).
    pub fn to_chain(&self, lane: usize) -> Chain {
        let mut chain = Chain::new();
        chain.load_state(&self.save_state(lane));
        chain
    }

    // ----- fault-layer hooks (parity rebuild + seeded injection) -------

    /// Current fold-vs-parity mismatch term of row `r` of subarray `s`
    /// (0 when the row is consistent).
    #[inline]
    fn row_term(&self, s: usize, r: usize) -> u64 {
        row_term_hash(s, r, lane_fold(&self.rows[s][r]) ^ self.parity[s][r])
    }

    /// The block syndrome: 0 iff no row's parity mismatches its data
    /// (up to hash collision odds; see DESIGN.md §15). Injectors keep
    /// this exact, so detection is a one-word read per block.
    pub fn syndrome(&self) -> u64 {
        self.syndrome
    }

    /// Recomputes every row's parity word from current data and clears
    /// the syndrome — used when a block enters fault-tracked service
    /// (arming, remap onto a spare), never on the broadcast path.
    pub fn rebuild_parity(&mut self) {
        for (s, sub) in self.rows.iter().enumerate() {
            for (r, row) in sub.iter().enumerate() {
                self.parity[s][r] = lane_fold(row);
            }
        }
        self.syndrome = 0;
    }

    /// Lists `(subarray, row)` coordinates whose stored parity disagrees
    /// with the data fold — the strike localization the detector reports.
    /// O(block), only walked once a nonzero syndrome flags the block.
    pub fn struck_rows(&self) -> Vec<(u8, u8)> {
        let mut out = Vec::new();
        for (s, sub) in self.rows.iter().enumerate() {
            for (r, row) in sub.iter().enumerate() {
                if lane_fold(row) != self.parity[s][r] {
                    out.push((s as u8, r as u8));
                }
            }
        }
        out
    }

    /// Test hook: true when every row's parity equals its data fold and
    /// the syndrome is zero — the invariant legitimate execution must
    /// preserve exactly.
    pub fn parity_consistent(&self) -> bool {
        self.syndrome == 0
            && self
                .rows
                .iter()
                .enumerate()
                .all(|(s, sub)| (0..TOTAL_ROWS).all(|r| lane_fold(&sub[r]) == self.parity[s][r]))
    }

    /// Transient strike: XOR-flips `mask` bits of row `r` of subarray
    /// `s` in lane `lane`, updating the struck row's syndrome term —
    /// the O(1 cache line) in-array parity check a real CAPE substrate
    /// evaluates on the row it just disturbed.
    pub fn flip_bits(&mut self, lane: usize, s: usize, r: usize, mask: u32) {
        let old = self.row_term(s, r);
        self.rows[s][r][lane] ^= mask;
        self.syndrome ^= old ^ self.row_term(s, r);
    }

    /// Stuck-at assertion: wedges `mask` bits of row `r` of subarray `s`
    /// in lane `lane` to `value`. Returns true if the word changed (an
    /// unchanged word leaves no parity trace — the march-test scrub is
    /// what catches such latent defects).
    pub fn force_bits(&mut self, lane: usize, s: usize, r: usize, mask: u32, value: bool) -> bool {
        let w = self.rows[s][r][lane];
        let forced = if value { w | mask } else { w & !mask };
        if forced == w {
            return false;
        }
        let old = self.row_term(s, r);
        self.rows[s][r][lane] = forced;
        self.syndrome ^= old ^ self.row_term(s, r);
        true
    }

    /// Dead-block assertion: scrambles every row, tag and accumulator
    /// slice to seeded xorshift garbage, then recomputes the whole-block
    /// syndrome (O(block), storm-only). Tags and accumulators carry no
    /// parity, but a dead block always scrambles its rows too, so the
    /// row syndrome flags it.
    pub fn scramble(&mut self, seed: u32) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            state
        };
        for sub in &mut self.rows {
            for row in sub {
                for w in row {
                    *w = next();
                }
            }
        }
        for slice in self.tags.iter_mut().chain(self.acc.iter_mut()) {
            for w in slice {
                *w = next();
            }
        }
        let mut syn = 0u64;
        for s in 0..SUBARRAYS_PER_CHAIN {
            for r in 0..TOTAL_ROWS {
                syn ^= self.row_term(s, r);
            }
        }
        self.syndrome = syn;
    }
}

/// True when every write targets a distinct subarray (the hardware
/// writes at most one row per subarray per update). Validated once at
/// plan lowering; kernels only `debug_assert!` it.
fn distinct_subarrays(writes: &[PlanWrite]) -> bool {
    let mut seen = 0u32;
    for w in writes {
        let bit = 1u32 << w.subarray;
        if seen & bit != 0 {
            return false;
        }
        seen |= bit;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microop::{ColSel, MicroOp, Probe, WriteSpec};
    use crate::program::MicroProgram;

    /// Deterministic pseudorandom word stream.
    fn rng(seed: u32) -> impl FnMut() -> u32 {
        let mut state = seed | 1;
        move || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            state
        }
    }

    /// A block and the per-lane scalar reference chains, seeded with the
    /// same pseudorandom registers, tags and accumulators.
    fn seeded_pair(seed: u32) -> (ChainBlock, Vec<Chain>) {
        let mut next = rng(seed);
        let mut block = ChainBlock::new();
        let mut chains = vec![Chain::new(); BLOCK_LANES];
        for (lane, chain) in chains.iter_mut().enumerate() {
            for reg in 0..6 {
                for col in 0..SUBARRAY_COLS {
                    let v = next();
                    block.write_element(lane, reg, col, v);
                    chain.write_element(reg, col, v);
                }
            }
            for s in 0..SUBARRAYS_PER_CHAIN {
                let (t, a) = (next(), next());
                block.set_tags(lane, s, t);
                chain.set_tags(s, t);
                block.set_acc(lane, s, a);
                chain.set_acc(s, a);
            }
        }
        (block, chains)
    }

    /// A messy microop soup covering every kernel shape: gated and
    /// ungated searches, all tag modes and destinations, tag-selected
    /// and window updates, raw writes, tag combines and reductions.
    fn sample_ops() -> Vec<MicroOp> {
        vec![
            MicroOp::Search {
                probes: vec![Probe::row(0, 1, true)],
                gates: vec![],
                dest: TagDest::Tags,
                mode: TagMode::Set,
            },
            MicroOp::Update {
                writes: vec![WriteSpec {
                    subarray: 1,
                    row: 4,
                    value: true,
                    cols: ColSel::Tags(0),
                }],
            },
            MicroOp::Search {
                probes: vec![Probe::new(2, vec![(1, true), (3, false)])],
                gates: vec![Probe::row(9, 0, true)],
                dest: TagDest::Acc,
                mode: TagMode::Set,
            },
            MicroOp::Search {
                probes: vec![Probe::row(3, 2, false)],
                gates: vec![],
                dest: TagDest::Tags,
                mode: TagMode::Or,
            },
            MicroOp::Search {
                probes: vec![Probe::row(4, 0, true)],
                gates: vec![],
                dest: TagDest::Tags,
                mode: TagMode::And,
            },
            MicroOp::Update {
                writes: vec![
                    WriteSpec {
                        subarray: 2,
                        row: 5,
                        value: false,
                        cols: ColSel::Acc(2),
                    },
                    WriteSpec {
                        subarray: 3,
                        row: crate::ROW_CARRY,
                        value: true,
                        cols: ColSel::Tags(2),
                    },
                ],
            },
            MicroOp::Write {
                subarray: 7,
                row: 6,
                data: 0xA5A5_5A5A,
                mask: 0x0FF0_F00F,
            },
            MicroOp::TagCombine {
                src: 0,
                dst: 5,
                op: TagMode::Set,
            },
            MicroOp::TagCombine {
                src: 5,
                dst: 6,
                op: TagMode::And,
            },
            MicroOp::TagCombine {
                src: 6,
                dst: 7,
                op: TagMode::Or,
            },
            MicroOp::ReduceTags { subarray: 7 },
            MicroOp::Update {
                writes: (0..SUBARRAYS_PER_CHAIN)
                    .map(|i| WriteSpec {
                        subarray: i,
                        row: 8,
                        value: i % 3 == 0,
                        cols: ColSel::Window,
                    })
                    .collect(),
            },
            MicroOp::Read {
                subarray: 1,
                row: 4,
            },
            MicroOp::ReduceTags { subarray: 0 },
        ]
    }

    /// Runs the lowered plan on the block and the original microops on
    /// the per-lane reference chains (skipping power-gated lanes), then
    /// asserts bit-exact state and identical reduction sums.
    fn assert_block_matches_reference(win: Lanes, seed: u32) {
        let (mut block, mut chains) = seeded_pair(seed);
        let program = MicroProgram::new(sample_ops());

        let mut block_sums = Vec::new();
        for op in program.plan() {
            if let Some(s) = block.execute_plan::<true>(op, &win) {
                block_sums.push(s);
            }
        }
        assert!(
            block.parity_consistent(),
            "legit execution broke parity (seed {seed})"
        );

        let mut ref_sums = vec![0u64; program.reduce_count()];
        for (lane, chain) in chains.iter_mut().enumerate() {
            if win[lane] == 0 {
                continue; // power-gated
            }
            let mut k = 0;
            for op in program.ops() {
                let r = chain.execute(op, win[lane]);
                if matches!(op, MicroOp::ReduceTags { .. }) {
                    ref_sums[k] += u64::from(r.unwrap());
                    k += 1;
                }
            }
        }

        assert_eq!(block_sums, ref_sums, "reduction sums (seed {seed})");
        for (lane, chain) in chains.iter().enumerate() {
            assert_eq!(
                &block.to_chain(lane),
                chain,
                "lane {lane} diverged (seed {seed}, win {:#x})",
                win[lane]
            );
        }
    }

    #[test]
    fn kernels_match_scalar_chain_full_window() {
        assert_block_matches_reference([u32::MAX; BLOCK_LANES], 0xC0FF_EE01);
    }

    #[test]
    fn kernels_match_scalar_chain_mixed_windows() {
        let mut next = rng(0xBEEF);
        let mut win = [0u32; BLOCK_LANES];
        for w in win.iter_mut() {
            *w = next();
        }
        // Force a couple of fully-gated and one fully-open lane.
        win[3] = 0;
        win[11] = 0;
        win[5] = u32::MAX;
        assert_block_matches_reference(win, 0xDEAD_0001);
    }

    #[test]
    fn power_gated_lanes_are_never_mutated() {
        let (mut block, chains) = seeded_pair(7);
        let before = block.to_chain(4);
        let mut win = [u32::MAX; BLOCK_LANES];
        win[4] = 0;
        let program = MicroProgram::new(sample_ops());
        for op in program.plan() {
            block.execute_plan::<false>(op, &win);
        }
        assert_eq!(block.to_chain(4), before, "gated lane must not change");
        drop(chains);
    }

    #[test]
    fn parity_off_and_on_kernels_are_bit_identical() {
        let win = [0x0F0F_F0F0u32; BLOCK_LANES];
        let (mut with, _) = seeded_pair(0x7A51);
        let (mut without, _) = seeded_pair(0x7A51);
        let program = MicroProgram::new(sample_ops());
        for op in program.plan() {
            assert_eq!(
                with.execute_plan::<true>(op, &win),
                without.execute_plan::<false>(op, &win)
            );
        }
        for lane in 0..BLOCK_LANES {
            assert_eq!(with.to_chain(lane), without.to_chain(lane), "lane {lane}");
        }
        assert!(with.parity_consistent());
    }

    #[test]
    fn strike_survives_full_row_overwrite_and_localizes() {
        let (mut block, _) = seeded_pair(0x0BAD);
        block.rebuild_parity();
        assert!(block.parity_consistent());
        block.flip_bits(3, 7, 5, 0x10);
        assert_ne!(block.syndrome(), 0, "strike must raise the syndrome");
        assert_eq!(block.struck_rows(), vec![(7, 5)]);
        // A legitimate full overwrite of the struck row shifts data and
        // parity by the same delta: the mismatch (and syndrome) persist.
        let win = [u32::MAX; BLOCK_LANES];
        let op = PlanOp::Write {
            subarray: 7,
            row: 5,
            data: 0xFFFF_FFFF,
            mask: u32::MAX,
        };
        block.execute_plan::<true>(&op, &win);
        assert_ne!(block.syndrome(), 0, "overwrite must not absorb the strike");
        assert_eq!(block.struck_rows(), vec![(7, 5)]);
        // Rebuild (quarantine/remap path) clears it.
        block.rebuild_parity();
        assert!(block.parity_consistent());
    }

    #[test]
    fn element_roundtrip_and_column_block_agree() {
        let mut block = ChainBlock::new();
        let mut next = rng(42);
        let mut vals = [0u32; SUBARRAY_COLS];
        for v in vals.iter_mut() {
            *v = next();
        }
        block.write_column_block(9, 6, &vals, u32::MAX);
        for (col, &v) in vals.iter().enumerate() {
            assert_eq!(block.read_element(9, 6, col), v, "col {col}");
        }
        assert_eq!(block.read_column_block(9, 6), vals);
        // Other lanes untouched.
        assert_eq!(block.read_column_block(8, 6), [0; SUBARRAY_COLS]);
    }

    #[test]
    fn chain_state_roundtrips_through_block() {
        let (block, chains) = seeded_pair(0x5EED);
        for (lane, chain) in chains.iter().enumerate() {
            let state = block.save_state(lane);
            assert_eq!(state, chain.save_state(), "lane {lane}");
            let mut fresh = ChainBlock::new();
            fresh.load_state(lane, &state);
            assert_eq!(fresh.save_state(lane), state, "lane {lane} reload");
        }
    }
}

//! A CAPE chain: 32 subarrays, tag bits, accumulators, and the tag bus.

use crate::bitmat::transpose32;
use crate::geometry::{SUBARRAYS_PER_CHAIN, SUBARRAY_COLS};
use crate::microop::{ColSel, MicroOp, Probe, TagDest, TagMode, WriteSpec};
use crate::subarray::{Subarray, DATA_ROWS, TOTAL_ROWS};

/// Number of metadata rows per subarray (carry, flag, two scratch rows).
pub(crate) const META_ROWS: usize = TOTAL_ROWS - DATA_ROWS;

/// Full state of one chain, captured at a microprogram sync point:
/// the 32 vector registers in lane-major element form (moved through the
/// bulk 32×32 transpose path), the per-subarray metadata rows, and the
/// tag/accumulator match registers.
///
/// Metadata rows and match registers are transient within one microop
/// program, but they are captured anyway so a context switch between any
/// two sync points is unconditionally bit-exact — no assumption about
/// which lowering initializes which row first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainState {
    /// `regs[r][col]` is the element of vector register `r` at lane `col`.
    pub(crate) regs: Box<[[u32; SUBARRAY_COLS]; DATA_ROWS]>,
    /// `meta[s][m]` is metadata row `DATA_ROWS + m` of subarray `s`.
    pub(crate) meta: Box<[[u32; META_ROWS]; SUBARRAYS_PER_CHAIN]>,
    pub(crate) tags: [u32; SUBARRAYS_PER_CHAIN],
    pub(crate) acc: [u32; SUBARRAYS_PER_CHAIN],
}

impl ChainState {
    /// The all-zero chain state — what a freshly constructed chain holds.
    pub fn zeroed() -> Self {
        Self {
            regs: Box::new([[0; SUBARRAY_COLS]; DATA_ROWS]),
            meta: Box::new([[0; META_ROWS]; SUBARRAYS_PER_CHAIN]),
            tags: [0; SUBARRAYS_PER_CHAIN],
            acc: [0; SUBARRAYS_PER_CHAIN],
        }
    }
}

impl Default for ChainState {
    fn default() -> Self {
        Self::zeroed()
    }
}

/// A chain of 32 subarrays with per-subarray tag bits and accumulators.
///
/// A chain stores 32 lanes x 32 vector registers x 32 bits. Operands are
/// *bit-sliced*: bit `i` of an element lives in subarray `i`, at the row
/// named by the vector register and the column named by the lane
/// (Section IV-B, Fig. 5). Bit-slicing gives *operand locality*: a
/// bit-serial search or update touches only one or two subarrays, which is
/// what keeps those microops fast and low-energy (Table II).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    /// Inline (not boxed): a chain is one contiguous ~4.9 KB block, so a
    /// shard's chains form a single slab and the broadcast hot loop never
    /// chases a heap pointer per subarray access.
    subarrays: [Subarray; SUBARRAYS_PER_CHAIN],
    tags: [u32; SUBARRAYS_PER_CHAIN],
    acc: [u32; SUBARRAYS_PER_CHAIN],
}

impl Default for Chain {
    fn default() -> Self {
        Self::new()
    }
}

impl Chain {
    /// Number of lanes (columns) in a chain.
    pub const LANES: usize = SUBARRAY_COLS;

    /// Creates a zero-initialized chain.
    pub fn new() -> Self {
        Self {
            subarrays: [Subarray::new(); SUBARRAYS_PER_CHAIN],
            tags: [0; SUBARRAYS_PER_CHAIN],
            acc: [0; SUBARRAYS_PER_CHAIN],
        }
    }

    /// Immutable access to subarray `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub fn subarray(&self, i: usize) -> &Subarray {
        &self.subarrays[i]
    }

    /// Mutable access to subarray `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub fn subarray_mut(&mut self, i: usize) -> &mut Subarray {
        &mut self.subarrays[i]
    }

    /// Current tag bits of subarray `i`.
    pub fn tags(&self, i: usize) -> u32 {
        self.tags[i]
    }

    /// Current accumulator bits of subarray `i`.
    pub fn acc(&self, i: usize) -> u32 {
        self.acc[i]
    }

    /// Overwrites the tag bits of subarray `i` (test/bring-up hook; real
    /// programs set tags through searches).
    pub fn set_tags(&mut self, i: usize, tags: u32) {
        self.tags[i] = tags;
    }

    /// Overwrites the accumulator bits of subarray `i` (context-restore
    /// hook; real programs set accumulators through searches).
    pub fn set_acc(&mut self, i: usize, acc: u32) {
        self.acc[i] = acc;
    }

    /// Captures the chain's full state. Vector registers move through the
    /// bulk transpose path ([`Chain::read_column_block`]); metadata rows
    /// and match registers are copied directly.
    pub fn save_state(&self) -> ChainState {
        let mut state = ChainState::zeroed();
        for r in 0..DATA_ROWS {
            state.regs[r] = self.read_column_block(r);
        }
        for (s, sub) in self.subarrays.iter().enumerate() {
            for m in 0..META_ROWS {
                state.meta[s][m] = sub.row(DATA_ROWS + m);
            }
        }
        state.tags = self.tags;
        state.acc = self.acc;
        state
    }

    /// Restores the chain to a previously captured state — the inverse of
    /// [`Chain::save_state`], using the bulk transpose path
    /// ([`Chain::write_column_block`]) for the vector registers.
    pub fn load_state(&mut self, state: &ChainState) {
        for r in 0..DATA_ROWS {
            self.write_column_block(r, &state.regs[r], u32::MAX);
        }
        for (s, sub) in self.subarrays.iter_mut().enumerate() {
            for m in 0..META_ROWS {
                sub.write_row(DATA_ROWS + m, state.meta[s][m], u32::MAX);
            }
        }
        self.tags = state.tags;
        self.acc = state.acc;
    }

    /// Executes one broadcast microop against this chain.
    ///
    /// `window` is the active-window column mask (from `vstart`/`vl`):
    /// searches are masked so inactive columns never set tags, and updates
    /// never write outside the window. Returns row data for `Read` and the
    /// tag population count for `ReduceTags`, `None` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if an update writes more than one row in the same subarray
    /// (the hardware writes at most one row per subarray per update) or if
    /// a search probes more than 4 rows of one subarray.
    pub fn execute(&mut self, op: &MicroOp, window: u32) -> Option<u32> {
        match op {
            MicroOp::Search {
                probes,
                gates,
                dest,
                mode,
            } => {
                let mut gate_match = u32::MAX;
                for g in gates {
                    gate_match &= self.subarrays[g.subarray].search(&g.keys);
                }
                for p in probes {
                    let m = self.subarrays[p.subarray].search(&p.keys) & gate_match & window;
                    self.accumulate(p.subarray, m, *dest, *mode, window);
                }
                None
            }
            MicroOp::Update { writes } => {
                self.check_one_row_per_subarray(writes);
                // All writes of one update happen in the same cycle, off
                // the pre-update match registers — which holds for direct
                // reads too, since updates write rows, never tags/acc.
                for w in writes {
                    let cols = match w.cols {
                        ColSel::Window => window,
                        ColSel::Tags(s) => self.tags[s] & window,
                        ColSel::Acc(s) => self.acc[s] & window,
                    };
                    self.subarrays[w.subarray].update_row(w.row, w.value, cols);
                }
                None
            }
            MicroOp::Read { subarray, row } => Some(self.subarrays[*subarray].row(*row)),
            MicroOp::Write {
                subarray,
                row,
                data,
                mask,
            } => {
                self.subarrays[*subarray].write_row(*row, *data, *mask & window);
                None
            }
            MicroOp::ReduceTags { subarray } => Some((self.tags[*subarray] & window).count_ones()),
            MicroOp::TagCombine { src, dst, op } => {
                let m = self.tags[*src];
                self.tags[*dst] = match op {
                    TagMode::Set => m,
                    TagMode::And => self.tags[*dst] & (m | !window),
                    TagMode::Or => self.tags[*dst] | (m & window),
                };
                None
            }
        }
    }

    fn accumulate(&mut self, subarray: usize, m: u32, dest: TagDest, mode: TagMode, window: u32) {
        let reg = match dest {
            TagDest::Tags => &mut self.tags[subarray],
            TagDest::Acc => &mut self.acc[subarray],
        };
        *reg = match mode {
            TagMode::Set => m,
            TagMode::And => *reg & (m | !window),
            TagMode::Or => *reg | m,
        };
    }

    /// Structural validation of the one-row-per-subarray update rule. The
    /// broadcast path validates once per program at plan lowering
    /// ([`crate::program::lower`]); this debug-only re-check guards the
    /// reference model's direct-execute path without taxing release runs.
    fn check_one_row_per_subarray(&self, writes: &[WriteSpec]) {
        let mut seen = 0u32;
        for w in writes {
            let bit = 1u32 << w.subarray;
            debug_assert!(
                seen & bit == 0,
                "update writes two rows of subarray {}",
                w.subarray
            );
            seen |= bit;
        }
    }

    /// Deposits a 32-bit `value` into vector register `reg` at lane `col`,
    /// bit-slicing it across the 32 subarrays. This is the functional
    /// equivalent of a vector-load transfer into one lane (the VMU performs
    /// one such deposit per element of a sub-request, Section V-E).
    ///
    /// # Panics
    ///
    /// Panics if `reg >= 32` or `col >= 32`.
    pub fn write_element(&mut self, reg: usize, col: usize, value: u32) {
        assert!(reg < DATA_ROWS, "vector register {reg} out of range");
        for (i, sub) in self.subarrays.iter_mut().enumerate() {
            sub.set_bit(reg, col, (value >> i) & 1 == 1);
        }
    }

    /// Reads back the 32-bit element of register `reg` at lane `col`.
    ///
    /// # Panics
    ///
    /// Panics if `reg >= 32` or `col >= 32`.
    pub fn read_element(&self, reg: usize, col: usize) -> u32 {
        assert!(reg < DATA_ROWS, "vector register {reg} out of range");
        let mut v = 0u32;
        for (i, sub) in self.subarrays.iter().enumerate() {
            if sub.bit(reg, col) {
                v |= 1 << i;
            }
        }
        v
    }

    /// Bulk-deposits up to 32 elements into vector register `reg`, one per
    /// lane, in a single pass: `values[col]` goes to lane `col` for every
    /// column selected by `col_mask`. The lane-major values are bit-sliced
    /// with one 32×32 [`transpose32`] and written as 32 masked row words —
    /// the wide-transfer path the VMU uses for vector loads (Section V-E)
    /// — instead of 1,024 single-bit pokes.
    ///
    /// # Panics
    ///
    /// Panics if `reg >= 32`.
    pub fn write_column_block(&mut self, reg: usize, values: &[u32; SUBARRAY_COLS], col_mask: u32) {
        assert!(reg < DATA_ROWS, "vector register {reg} out of range");
        let mut m = *values;
        transpose32(&mut m);
        for (i, sub) in self.subarrays.iter_mut().enumerate() {
            sub.write_row(reg, m[i], col_mask);
        }
    }

    /// Bulk-reads vector register `reg` across all 32 lanes: returns one
    /// value per column. Inverse of [`Chain::write_column_block`]; 32 row
    /// reads plus one transpose instead of a per-element, per-bit walk.
    ///
    /// # Panics
    ///
    /// Panics if `reg >= 32`.
    pub fn read_column_block(&self, reg: usize) -> [u32; SUBARRAY_COLS] {
        assert!(reg < DATA_ROWS, "vector register {reg} out of range");
        let mut m = [0u32; SUBARRAY_COLS];
        for (i, sub) in self.subarrays.iter().enumerate() {
            m[i] = sub.row(reg);
        }
        transpose32(&mut m);
        m
    }

    /// Convenience: builds a search probe for a single row of a single
    /// subarray.
    pub fn probe(subarray: usize, row: usize, want: bool) -> Probe {
        Probe::row(subarray, row, want)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microop::{ColSel, WriteSpec};

    fn search(probes: Vec<Probe>, mode: TagMode) -> MicroOp {
        MicroOp::Search {
            probes,
            gates: vec![],
            dest: TagDest::Tags,
            mode,
        }
    }

    #[test]
    fn element_roundtrip_bit_slices_across_subarrays() {
        let mut c = Chain::new();
        c.write_element(4, 7, 0xA5A5_0F0F);
        assert_eq!(c.read_element(4, 7), 0xA5A5_0F0F);
        // Bit 0 lives in subarray 0, bit 31 in subarray 31.
        assert!(c.subarray(0).bit(4, 7)); // LSB of 0x...0F is 1
        assert!(c.subarray(31).bit(4, 7)); // MSB of 0xA5.. is 1
        assert!(!c.subarray(4).bit(4, 7)); // bit 4 of 0x...0F is 0
    }

    #[test]
    fn search_sets_tags_within_window() {
        let mut c = Chain::new();
        c.write_element(1, 0, 1); // lane 0: bit 0 = 1
        c.write_element(1, 3, 1); // lane 3: bit 0 = 1
        let op = search(vec![Chain::probe(0, 1, true)], TagMode::Set);
        c.execute(&op, u32::MAX);
        assert_eq!(c.tags(0), 0b1001);
        // Restrict the window to lane 0 only.
        c.execute(&op, 0b0001);
        assert_eq!(c.tags(0), 0b0001);
    }

    #[test]
    fn search_into_accumulator_is_independent_of_tags() {
        let mut c = Chain::new();
        c.write_element(1, 2, 1);
        c.set_tags(0, 0b1000);
        let op = MicroOp::Search {
            probes: vec![Chain::probe(0, 1, true)],
            gates: vec![],
            dest: TagDest::Acc,
            mode: TagMode::Set,
        };
        c.execute(&op, u32::MAX);
        assert_eq!(c.acc(0), 0b0100);
        assert_eq!(c.tags(0), 0b1000); // untouched
    }

    #[test]
    fn gated_search_ands_the_gate_match() {
        let mut c = Chain::new();
        // Gate: subarray 9 row 0 == 1 holds in columns 0 and 2.
        c.subarray_mut(9).write_row(0, 0b101, u32::MAX);
        // Probe: subarray 1 row 2 == 1 holds in columns 1 and 2.
        c.subarray_mut(1).write_row(2, 0b110, u32::MAX);
        let op = MicroOp::Search {
            probes: vec![Chain::probe(1, 2, true)],
            gates: vec![Chain::probe(9, 0, true)],
            dest: TagDest::Tags,
            mode: TagMode::Set,
        };
        c.execute(&op, u32::MAX);
        assert_eq!(c.tags(1), 0b100);
    }

    #[test]
    fn tag_and_accumulation_ignores_masked_columns() {
        let mut c = Chain::new();
        c.set_tags(0, 0b1111);
        // Search that matches nothing, but only lane 0 is in the window:
        // lanes outside the window must keep their tag value.
        let op = search(vec![Chain::probe(0, 0, true)], TagMode::And);
        c.execute(&op, 0b0001);
        assert_eq!(c.tags(0), 0b1110);
    }

    #[test]
    fn update_own_tags_writes_only_tagged_columns() {
        let mut c = Chain::new();
        c.set_tags(2, 0b0110);
        let op = MicroOp::Update {
            writes: vec![WriteSpec {
                subarray: 2,
                row: 5,
                value: true,
                cols: ColSel::Tags(2),
            }],
        };
        c.execute(&op, u32::MAX);
        assert_eq!(c.subarray(2).row(5), 0b0110);
    }

    #[test]
    fn update_prev_tags_propagates_to_next_subarray() {
        // Fig. 5: tags of subarray i select the columns updated in i+1.
        let mut c = Chain::new();
        c.set_tags(3, 0b1010);
        let op = MicroOp::Update {
            writes: vec![WriteSpec {
                subarray: 4,
                row: crate::ROW_CARRY,
                value: true,
                cols: ColSel::Tags(3),
            }],
        };
        c.execute(&op, u32::MAX);
        assert_eq!(c.subarray(4).row(crate::ROW_CARRY), 0b1010);
    }

    #[test]
    fn dual_subarray_update_uses_pre_update_snapshot() {
        let mut c = Chain::new();
        c.set_tags(0, 0b0001);
        c.set_tags(1, 0b0010);
        let op = MicroOp::Update {
            writes: vec![
                WriteSpec {
                    subarray: 1,
                    row: 0,
                    value: true,
                    cols: ColSel::Tags(1),
                },
                WriteSpec {
                    subarray: 2,
                    row: 0,
                    value: true,
                    cols: ColSel::Tags(1),
                },
            ],
        };
        c.execute(&op, u32::MAX);
        assert_eq!(c.subarray(1).row(0), 0b0010);
        assert_eq!(c.subarray(2).row(0), 0b0010);
    }

    #[test]
    fn tag_combine_folds_neighbouring_tags() {
        let mut c = Chain::new();
        c.set_tags(0, 0b0110);
        c.set_tags(1, 0b0011);
        c.execute(
            &MicroOp::TagCombine {
                src: 0,
                dst: 1,
                op: TagMode::And,
            },
            u32::MAX,
        );
        assert_eq!(c.tags(1), 0b0010);
        c.set_tags(2, 0b1000);
        c.execute(
            &MicroOp::TagCombine {
                src: 1,
                dst: 2,
                op: TagMode::Or,
            },
            u32::MAX,
        );
        assert_eq!(c.tags(2), 0b1010);
        c.execute(
            &MicroOp::TagCombine {
                src: 0,
                dst: 3,
                op: TagMode::Set,
            },
            u32::MAX,
        );
        assert_eq!(c.tags(3), 0b0110);
    }

    #[test]
    fn reduce_tags_counts_within_window() {
        let mut c = Chain::new();
        c.set_tags(7, 0b1111_0000);
        let op = MicroOp::ReduceTags { subarray: 7 };
        assert_eq!(c.clone().execute(&op, u32::MAX), Some(4));
        assert_eq!(c.execute(&op, 0b0011_0000), Some(2));
    }

    #[test]
    fn read_returns_row_write_respects_window() {
        let mut c = Chain::new();
        let w = MicroOp::Write {
            subarray: 3,
            row: 9,
            data: u32::MAX,
            mask: u32::MAX,
        };
        c.execute(&w, 0x0000_FFFF);
        assert_eq!(
            c.execute(
                &MicroOp::Read {
                    subarray: 3,
                    row: 9
                },
                u32::MAX
            ),
            Some(0x0000_FFFF)
        );
    }

    #[test]
    fn column_block_matches_per_element_path() {
        let mut bulk = Chain::new();
        let mut serial = Chain::new();
        let mut vals = [0u32; SUBARRAY_COLS];
        let mut x: u32 = 0xC0FF_EE01;
        for v in vals.iter_mut() {
            x = x.wrapping_mul(0x9E37_79B9).rotate_left(13);
            *v = x;
        }
        bulk.write_column_block(6, &vals, u32::MAX);
        for (col, &v) in vals.iter().enumerate() {
            serial.write_element(6, col, v);
        }
        assert_eq!(bulk, serial);
        assert_eq!(bulk.read_column_block(6), vals);
    }

    #[test]
    fn masked_column_block_preserves_unselected_lanes() {
        let mut c = Chain::new();
        for col in 0..Chain::LANES {
            c.write_element(2, col, 0xDEAD_0000 | col as u32);
        }
        let vals = [0x1234_5678u32; SUBARRAY_COLS];
        c.write_column_block(2, &vals, 0x0000_00F0); // lanes 4..8 only
        for col in 0..Chain::LANES {
            let want = if (4..8).contains(&col) {
                0x1234_5678
            } else {
                0xDEAD_0000 | col as u32
            };
            assert_eq!(c.read_element(2, col), want, "lane {col}");
        }
    }

    #[test]
    #[should_panic(expected = "two rows of subarray")]
    fn update_rejects_two_rows_in_one_subarray() {
        let mut c = Chain::new();
        let op = MicroOp::Update {
            writes: vec![
                WriteSpec {
                    subarray: 1,
                    row: 0,
                    value: true,
                    cols: ColSel::Window,
                },
                WriteSpec {
                    subarray: 1,
                    row: 1,
                    value: true,
                    cols: ColSel::Window,
                },
            ],
        };
        c.execute(&op, u32::MAX);
    }
}

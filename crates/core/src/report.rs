//! Run reports: everything the evaluation harness needs from one run.

use cape_cp::CpStats;
use cape_csb::MicroOpStats;
use serde::{Deserialize, Serialize};

/// Summary of one program execution on a [`CapeMachine`](crate::CapeMachine).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Total cycles (control processor and vector engine overlapped).
    pub cycles: u64,
    /// Core frequency used to convert cycles to time.
    pub freq_ghz: f64,
    /// Control-processor statistics (instruction mix, branches, …).
    pub cp: CpStats,
    /// CSB microops emitted during the run.
    pub microops: MicroOpStats,
    /// CSB dynamic energy in microjoules.
    pub csb_energy_uj: f64,
    /// Bytes read from HBM.
    pub hbm_bytes_read: u64,
    /// Bytes written to HBM.
    pub hbm_bytes_written: u64,
    /// Element-wise vector operations executed (vector compute
    /// instructions weighted by their active vector length) — the "ops"
    /// numerator of the roofline model.
    pub lane_ops: u64,
    /// Cycles spent in VMU transfers.
    pub vmu_cycles: u64,
    /// Cycles spent in VCU compute.
    pub vcu_cycles: u64,
    /// Microcode program-cache hits during the run (vector instructions
    /// whose compiled broadcast program was reused).
    pub program_cache_hits: u64,
    /// Microcode program-cache misses during the run (fresh compiles).
    pub program_cache_misses: u64,
    /// Fusion windows of two or more vector instructions broadcast to
    /// the CSB as one super-program during the run.
    pub fused_windows: u64,
    /// Vector instructions executed inside those fused windows.
    pub fused_ops: u64,
    /// Pool broadcasts (fan-out + join) the fusion windows eliminated:
    /// each `n`-op window paid one join instead of `n`.
    pub fused_joins_saved: u64,
}

impl RunReport {
    /// Wall-clock time in milliseconds.
    pub fn time_ms(&self) -> f64 {
        self.cycles as f64 / (self.freq_ghz * 1e6)
    }

    /// Total HBM traffic in bytes.
    pub fn hbm_bytes(&self) -> u64 {
        self.hbm_bytes_read + self.hbm_bytes_written
    }

    /// Throughput in giga-(element)-operations per second.
    pub fn gops(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.lane_ops as f64 * self.freq_ghz / self.cycles as f64
        }
    }

    /// Operational intensity in element-operations per byte of HBM
    /// traffic (infinite for runs with no memory traffic).
    pub fn intensity(&self) -> f64 {
        let bytes = self.hbm_bytes();
        if bytes == 0 {
            f64::INFINITY
        } else {
            self.lane_ops as f64 / bytes as f64
        }
    }

    /// Speedup of this run relative to `baseline_time_ms` from another
    /// model.
    pub fn speedup_over(&self, baseline_time_ms: f64) -> f64 {
        baseline_time_ms / self.time_ms()
    }

    /// Fraction of vector compute instructions whose compiled program was
    /// found in the VCU's program cache (0 when none executed).
    pub fn program_cache_hit_rate(&self) -> f64 {
        let total = self.program_cache_hits + self.program_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.program_cache_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, lane_ops: u64, bytes: u64) -> RunReport {
        RunReport {
            cycles,
            freq_ghz: 2.7,
            cp: CpStats::default(),
            microops: MicroOpStats::default(),
            csb_energy_uj: 0.0,
            hbm_bytes_read: bytes,
            hbm_bytes_written: 0,
            lane_ops,
            vmu_cycles: 0,
            vcu_cycles: 0,
            program_cache_hits: 0,
            program_cache_misses: 0,
            fused_windows: 0,
            fused_ops: 0,
            fused_joins_saved: 0,
        }
    }

    #[test]
    fn time_and_throughput() {
        let r = report(2_700_000, 1_000_000, 4_000_000);
        assert!((r.time_ms() - 1.0).abs() < 1e-9);
        assert!((r.gops() - 1.0).abs() < 1e-9);
        assert!((r.intensity() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn zero_traffic_has_infinite_intensity() {
        assert!(report(100, 10, 0).intensity().is_infinite());
    }

    #[test]
    fn speedup_is_time_ratio() {
        let r = report(2_700_000, 0, 0); // 1 ms
        assert!((r.speedup_over(14.0) - 14.0).abs() < 1e-9);
    }
}

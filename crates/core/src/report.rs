//! Run reports: everything the evaluation harness needs from one run.

use cape_cp::CpStats;
use cape_csb::MicroOpStats;
use serde::{Deserialize, Serialize};

/// Fusion-window flushes broken down by cause.
///
/// Every counter is "windows of buffered vector ops committed to the CSB
/// because of this event" — an empty pending window costs nothing and is
/// not counted. Single-op windows count too: a flush that lands one
/// buffered op is still a lost fusion opportunity worth attributing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowFlushes {
    /// An *effective* `vl`/`vstart` change. `vsetvli`/`vsetstart` that
    /// provably leave the active window unchanged join the window as
    /// no-ops and never appear here.
    pub vsetvli: u64,
    /// A vector instruction whose result crosses to the scalar side
    /// (`vredsum`, `vmv.x.s`, or any non-fusible lowering).
    pub scalar_result: u64,
    /// A VMU transfer (`vle32`/`vse32`/`vlrw`) needed committed state.
    pub vmu: u64,
    /// A slice preemption point (scheduler quantum expired).
    pub preempt: u64,
    /// A context save/restore switched jobs mid-window.
    pub ctx_switch: u64,
    /// Fault machinery (scrub, quarantine, spare service, watchdog, or a
    /// rejected instruction) forced committed state.
    pub fault: u64,
    /// An end-of-run drain (program exit or direct CSB access).
    pub drain: u64,
    /// The window hit `fusion_window` capacity.
    pub capacity: u64,
}

impl WindowFlushes {
    /// Total flushes across every cause.
    pub fn total(&self) -> u64 {
        self.vsetvli
            + self.scalar_result
            + self.vmu
            + self.preempt
            + self.ctx_switch
            + self.fault
            + self.drain
            + self.capacity
    }

    /// Adds `other` into `self` field-wise.
    pub fn accumulate(&mut self, other: &Self) {
        self.vsetvli += other.vsetvli;
        self.scalar_result += other.scalar_result;
        self.vmu += other.vmu;
        self.preempt += other.preempt;
        self.ctx_switch += other.ctx_switch;
        self.fault += other.fault;
        self.drain += other.drain;
        self.capacity += other.capacity;
    }

    /// Field-wise difference `self - earlier` (counters only grow).
    pub fn since(&self, earlier: &Self) -> Self {
        Self {
            vsetvli: self.vsetvli - earlier.vsetvli,
            scalar_result: self.scalar_result - earlier.scalar_result,
            vmu: self.vmu - earlier.vmu,
            preempt: self.preempt - earlier.preempt,
            ctx_switch: self.ctx_switch - earlier.ctx_switch,
            fault: self.fault - earlier.fault,
            drain: self.drain - earlier.drain,
            capacity: self.capacity - earlier.capacity,
        }
    }
}

/// Summary of one program execution on a [`CapeMachine`](crate::CapeMachine).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Total cycles (control processor and vector engine overlapped).
    pub cycles: u64,
    /// Core frequency used to convert cycles to time.
    pub freq_ghz: f64,
    /// Control-processor statistics (instruction mix, branches, …).
    pub cp: CpStats,
    /// CSB microops emitted during the run.
    pub microops: MicroOpStats,
    /// CSB dynamic energy in microjoules.
    pub csb_energy_uj: f64,
    /// Bytes read from HBM.
    pub hbm_bytes_read: u64,
    /// Bytes written to HBM.
    pub hbm_bytes_written: u64,
    /// Element-wise vector operations executed (vector compute
    /// instructions weighted by their active vector length) — the "ops"
    /// numerator of the roofline model.
    pub lane_ops: u64,
    /// Cycles spent in VMU transfers.
    pub vmu_cycles: u64,
    /// Cycles spent in VCU compute.
    pub vcu_cycles: u64,
    /// Microcode program-cache hits during the run (vector instructions
    /// whose compiled broadcast program was reused).
    pub program_cache_hits: u64,
    /// Microcode program-cache misses during the run (fresh compiles).
    pub program_cache_misses: u64,
    /// Fusion windows of two or more vector instructions broadcast to
    /// the CSB as one super-program during the run.
    pub fused_windows: u64,
    /// Vector instructions executed inside those fused windows.
    pub fused_ops: u64,
    /// Pool broadcasts (fan-out + join) the fusion windows eliminated:
    /// each `n`-op window paid one join instead of `n`.
    pub fused_joins_saved: u64,
    /// Window flushes during the run, by cause.
    pub window_flushes: WindowFlushes,
    /// Plan-level stores the window compiler's peepholes (dead-store
    /// elimination, `TagCombine` dedup) removed from executed fused
    /// windows — work the CSB never had to broadcast.
    pub dead_stores_eliminated: u64,
}

impl RunReport {
    /// Wall-clock time in milliseconds.
    pub fn time_ms(&self) -> f64 {
        self.cycles as f64 / (self.freq_ghz * 1e6)
    }

    /// Total HBM traffic in bytes.
    pub fn hbm_bytes(&self) -> u64 {
        self.hbm_bytes_read + self.hbm_bytes_written
    }

    /// Throughput in giga-(element)-operations per second.
    pub fn gops(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.lane_ops as f64 * self.freq_ghz / self.cycles as f64
        }
    }

    /// Operational intensity in element-operations per byte of HBM
    /// traffic (infinite for runs with no memory traffic).
    pub fn intensity(&self) -> f64 {
        let bytes = self.hbm_bytes();
        if bytes == 0 {
            f64::INFINITY
        } else {
            self.lane_ops as f64 / bytes as f64
        }
    }

    /// Speedup of this run relative to `baseline_time_ms` from another
    /// model.
    pub fn speedup_over(&self, baseline_time_ms: f64) -> f64 {
        baseline_time_ms / self.time_ms()
    }

    /// Fraction of vector compute instructions whose compiled program was
    /// found in the VCU's program cache (0 when none executed).
    pub fn program_cache_hit_rate(&self) -> f64 {
        let total = self.program_cache_hits + self.program_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.program_cache_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, lane_ops: u64, bytes: u64) -> RunReport {
        RunReport {
            cycles,
            freq_ghz: 2.7,
            cp: CpStats::default(),
            microops: MicroOpStats::default(),
            csb_energy_uj: 0.0,
            hbm_bytes_read: bytes,
            hbm_bytes_written: 0,
            lane_ops,
            vmu_cycles: 0,
            vcu_cycles: 0,
            program_cache_hits: 0,
            program_cache_misses: 0,
            fused_windows: 0,
            fused_ops: 0,
            fused_joins_saved: 0,
            window_flushes: WindowFlushes::default(),
            dead_stores_eliminated: 0,
        }
    }

    #[test]
    fn time_and_throughput() {
        let r = report(2_700_000, 1_000_000, 4_000_000);
        assert!((r.time_ms() - 1.0).abs() < 1e-9);
        assert!((r.gops() - 1.0).abs() < 1e-9);
        assert!((r.intensity() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn zero_traffic_has_infinite_intensity() {
        assert!(report(100, 10, 0).intensity().is_infinite());
    }

    #[test]
    fn window_flush_arithmetic() {
        let mut a = WindowFlushes {
            vsetvli: 2,
            capacity: 5,
            ..WindowFlushes::default()
        };
        let b = WindowFlushes {
            vsetvli: 1,
            drain: 3,
            ..WindowFlushes::default()
        };
        a.accumulate(&b);
        assert_eq!(a.vsetvli, 3);
        assert_eq!(a.total(), 11);
        let d = a.since(&b);
        assert_eq!(d.vsetvli, 2);
        assert_eq!(d.drain, 0);
        assert_eq!(d.total(), 7);
    }

    #[test]
    fn speedup_is_time_ratio() {
        let r = report(2_700_000, 0, 0); // 1 ms
        assert!((r.speedup_over(14.0) - 14.0).abs() < 1e-9);
    }
}

//! Microoperation delay and energy constants (Table II of the paper) and
//! the CSB energy model built on them.
//!
//! Table II reports, per chain, the delay and the dynamic energy of each
//! microoperation in its bit-serial (BS, 1–2 active subarrays) and
//! bit-parallel (BP, many active subarrays) flavours, extracted from
//! ASAP7 circuit simulation and a synthesized chain layout. We transcribe
//! those constants and multiply by the emulator's exact microop counts
//! and the number of active chains; EXPERIMENTS.md shows this reproduces
//! Table I's per-instruction energy-per-lane column.

use cape_csb::MicroOpStats;
use serde::{Deserialize, Serialize};

/// Microoperation delays in picoseconds (Table II, one chain).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicroOpTiming {
    /// Single-row read (round-trip; the system critical path).
    pub read_ps: f64,
    /// Single-row write.
    pub write_ps: f64,
    /// Search driving up to 4 rows.
    pub search_ps: f64,
    /// Update without inter-subarray propagation.
    pub update_ps: f64,
    /// Update with propagation.
    pub update_prop_ps: f64,
    /// Reduction (per pipeline stage).
    pub reduce_ps: f64,
}

/// Table II delays.
pub const TABLE2_DELAYS: MicroOpTiming = MicroOpTiming {
    read_ps: 237.0,
    write_ps: 181.0,
    search_ps: 227.0,
    update_ps: 209.0,
    update_prop_ps: 209.0,
    reduce_ps: 217.0,
};

/// Per-chain dynamic energy of one microoperation flavour, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicroOpEnergy {
    /// Single-row read.
    pub read_pj: f64,
    /// Single-row write.
    pub write_pj: f64,
    /// Search.
    pub search_pj: f64,
    /// Update (without propagation).
    pub update_pj: f64,
    /// Update with propagation.
    pub update_prop_pj: f64,
    /// Reduction popcount + tree input.
    pub reduce_pj: f64,
    /// Tag-bus combine (not in Table II; estimated at a tenth of a
    /// bit-serial search since only peripheral flip-flops toggle — see
    /// DESIGN.md).
    pub tag_combine_pj: f64,
}

/// Table II bit-serial energies (reads/writes/reductions have no
/// bit-serial flavour; they reuse the bit-parallel numbers).
pub const TABLE2_BS: MicroOpEnergy = MicroOpEnergy {
    read_pj: 2.8,
    write_pj: 2.4,
    search_pj: 1.0,
    update_pj: 1.2,
    update_prop_pj: 1.2,
    reduce_pj: 8.9,
    tag_combine_pj: 0.1,
};

/// Table II bit-parallel energies.
pub const TABLE2_BP: MicroOpEnergy = MicroOpEnergy {
    read_pj: 2.8,
    write_pj: 2.4,
    search_pj: 5.7,
    update_pj: 3.8,
    // The paper reports no BP update-with-propagation flavour (carry
    // propagation is inherently bit-serial); keep the BS number.
    update_prop_pj: 1.2,
    reduce_pj: 8.9,
    tag_combine_pj: 0.1,
};

/// Total CSB dynamic energy in picojoules for the given microop mix,
/// with `active_chains` chains toggling (idle chains are power-gated,
/// Section V-F).
pub fn microop_energy_pj(stats: &MicroOpStats, active_chains: u64) -> f64 {
    let bs = TABLE2_BS;
    let bp = TABLE2_BP;
    // Table II's 8.9 pJ reduction energy covers the whole pipelined tree
    // pass of one instruction (the paper: "the energy consumed by the
    // reduction logic, 8.9 pJ"); a 32-bit reduction emits 32 per-bit
    // popcount microops, so each carries 1/32 of it.
    let reduce_per_uop = bp.reduce_pj / 32.0;
    let per_chain = stats.searches_bs as f64 * bs.search_pj
        + stats.searches_bp as f64 * bp.search_pj
        + stats.updates_bs as f64 * bs.update_pj
        + stats.updates_bp as f64 * bp.update_pj
        + stats.updates_prop as f64 * bs.update_prop_pj
        + stats.reads as f64 * bp.read_pj
        + stats.writes as f64 * bp.write_pj
        + stats.reduces as f64 * reduce_per_uop
        + stats.tag_combines as f64 * bs.tag_combine_pj;
    per_chain * active_chains as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cape_csb::{Csb, CsbGeometry};
    use cape_ucode::{Sequencer, VectorOp};

    /// Emulated microops x Table II energies must land near Table I's
    /// per-lane energy column (the paper derives Table I the same way).
    #[test]
    fn derived_energy_matches_table_one_per_lane() {
        let check = |op: VectorOp, paper_pj_per_lane: f64, tolerance: f64| {
            let mut csb = Csb::new(CsbGeometry::new(1));
            let a: Vec<u32> = (0..32u32)
                .map(|i| i.wrapping_mul(2654435761) % 97)
                .collect();
            csb.write_vector(1, &a);
            csb.write_vector(2, &a);
            let out = Sequencer::new(&mut csb).execute(&op);
            let lanes = 32.0;
            let per_lane = microop_energy_pj(&out.stats, 1) / lanes;
            assert!(
                (per_lane - paper_pj_per_lane).abs() <= tolerance,
                "{op:?}: derived {per_lane:.2} pJ/lane vs paper {paper_pj_per_lane}"
            );
        };
        // Table I: vadd 8.4 pJ, vand 0.4, vxor 0.5, vmerge 0.5 per lane.
        check(
            VectorOp::Add {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
            8.4,
            2.0,
        );
        check(
            VectorOp::And {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
            0.4,
            0.2,
        );
        check(
            VectorOp::Xor {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
            0.5,
            0.2,
        );
        check(
            VectorOp::Merge {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
            0.5,
            0.2,
        );
    }

    #[test]
    fn vmul_energy_dominates() {
        let mut csb = Csb::new(CsbGeometry::new(1));
        let a: Vec<u32> = (0..32).collect();
        csb.write_vector(1, &a);
        csb.write_vector(2, &a);
        let mul = Sequencer::new(&mut csb).execute(&VectorOp::Mul {
            vd: 3,
            vs1: 1,
            vs2: 2,
        });
        let add = Sequencer::new(&mut csb).execute(&VectorOp::Add {
            vd: 4,
            vs1: 1,
            vs2: 2,
        });
        let e_mul = microop_energy_pj(&mul.stats, 1);
        let e_add = microop_energy_pj(&add.stats, 1);
        // Table I: 99.9 vs 8.4 pJ/lane, a ~12x gap.
        assert!(
            e_mul / e_add > 8.0,
            "mul/add energy ratio {}",
            e_mul / e_add
        );
    }

    #[test]
    fn energy_scales_with_active_chains() {
        let stats = {
            let mut csb = Csb::new(CsbGeometry::new(1));
            Sequencer::new(&mut csb)
                .execute(&VectorOp::Broadcast { vd: 1, rs: 7 })
                .stats
        };
        let one = microop_energy_pj(&stats, 1);
        let thousand = microop_energy_pj(&stats, 1000);
        assert!((thousand / one - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn all_microop_delays_fit_the_cycle() {
        // 2.7 GHz -> 370 ps cycle; every Table II delay fits.
        let d = TABLE2_DELAYS;
        for ps in [
            d.read_ps,
            d.write_ps,
            d.search_ps,
            d.update_ps,
            d.update_prop_ps,
            d.reduce_ps,
        ] {
            assert!(ps <= 370.0, "{ps} ps exceeds the 2.7 GHz cycle");
        }
        // And the read is the critical path.
        assert!(
            d.read_ps
                >= d.write_ps
                    .max(d.search_ps)
                    .max(d.update_ps)
                    .max(d.reduce_ps)
        );
    }
}

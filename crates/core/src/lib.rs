//! The full CAPE system model: control processor + VCU + VMU +
//! compute-storage block + HBM, integrated into a runnable
//! [`CapeMachine`] with cycle-approximate timing, energy accounting and
//! roofline extraction (Section VI of the paper).
//!
//! # Example
//!
//! ```
//! use cape_core::{CapeConfig, CapeMachine};
//! use cape_isa::assemble;
//! use cape_mem::MainMemory;
//!
//! let mut machine = CapeMachine::new(CapeConfig::tiny(4));
//! let mut mem = MainMemory::new();
//! mem.write_u32_slice(0x1000, &[1, 2, 3, 4]);
//!
//! let prog = assemble(r"
//!     li t0, 4
//!     vsetvli t1, t0, e32,m1
//!     li a0, 0x1000
//!     vle32.v v1, (a0)
//!     vadd.vx v2, v1, t0
//!     li a1, 0x2000
//!     vse32.v v2, (a1)
//!     halt
//! ").unwrap();
//!
//! let report = machine.run(&prog, &mut mem).unwrap();
//! assert_eq!(mem.read_u32_slice(0x2000, 4), vec![5, 6, 7, 8]);
//! assert!(report.cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod machine;
mod report;
mod roofline;
mod timing;

pub use cape_csb::{FaultConfig, FaultKind, FaultStats, RemapOutcome, ScrubReport};
pub use config::{CapeConfig, HealthThresholds};
pub use machine::{CapeMachine, MachineContext, MachineCounters};
pub use report::{RunReport, WindowFlushes};
pub use roofline::{Roofline, RooflinePoint};
pub use timing::{
    microop_energy_pj, MicroOpEnergy, MicroOpTiming, TABLE2_BP, TABLE2_BS, TABLE2_DELAYS,
};

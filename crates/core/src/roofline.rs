//! Roofline model (Williams et al.) for CAPE configurations, used to
//! regenerate the paper's Fig. 10-style analysis.

use crate::config::CapeConfig;
use crate::report::RunReport;
use serde::{Deserialize, Serialize};

/// A machine roofline: compute ceiling and memory-bandwidth slope.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Peak throughput in giga-element-operations per second.
    pub peak_gops: f64,
    /// Peak memory bandwidth in GB/s.
    pub peak_gbps: f64,
}

impl Roofline {
    /// The roofline of a CAPE configuration. The compute ceiling takes
    /// `vadd` (8n+2 cycles over all lanes) as the representative
    /// element-wise operation; the memory roof is the HBM aggregate.
    pub fn cape(config: &CapeConfig) -> Self {
        let vadd_cycles = 8.0 * 32.0 + 2.0;
        Self {
            peak_gops: config.max_vl() as f64 * config.freq_ghz / vadd_cycles,
            peak_gbps: config.hbm.peak_bytes_per_ns(),
        }
    }

    /// A custom roofline (used for the baseline models).
    pub fn new(peak_gops: f64, peak_gbps: f64) -> Self {
        Self {
            peak_gops,
            peak_gbps,
        }
    }

    /// Attainable throughput at the given operational intensity
    /// (ops/byte): `min(peak, intensity x bandwidth)`.
    pub fn attainable_gops(&self, intensity: f64) -> f64 {
        if intensity.is_infinite() {
            self.peak_gops
        } else {
            self.peak_gops.min(intensity * self.peak_gbps)
        }
    }

    /// The ridge point: the intensity where the machine turns
    /// compute-bound.
    pub fn ridge_intensity(&self) -> f64 {
        self.peak_gops / self.peak_gbps
    }
}

/// One application's position in roofline space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Workload name.
    pub name: String,
    /// Operational intensity in ops/byte.
    pub intensity: f64,
    /// Achieved throughput in Gops/s.
    pub gops: f64,
}

impl RooflinePoint {
    /// Extracts the roofline point of a run.
    pub fn from_report(name: impl Into<String>, report: &RunReport) -> Self {
        Self {
            name: name.into(),
            intensity: report.intensity(),
            gops: report.gops(),
        }
    }

    /// Fraction of the attainable roofline this point achieves.
    pub fn efficiency(&self, roofline: &Roofline) -> f64 {
        let attainable = roofline.attainable_gops(self.intensity);
        if attainable == 0.0 {
            0.0
        } else {
            self.gops / attainable
        }
    }

    /// True when the point sits left of the ridge (memory-bound region).
    pub fn is_memory_bound(&self, roofline: &Roofline) -> bool {
        self.intensity < roofline.ridge_intensity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cape32k_roofline_magnitudes() {
        let r = Roofline::cape(&CapeConfig::cape32k());
        // 32768 lanes x 2.7 GHz / 258 cycles = ~343 Gops.
        assert!((r.peak_gops - 342.9).abs() < 1.0, "peak {}", r.peak_gops);
        assert_eq!(r.peak_gbps, 128.0);
        // Ridge around 2.7 ops/byte.
        assert!((r.ridge_intensity() - 2.68).abs() < 0.1);
    }

    #[test]
    fn cape131k_raises_only_the_compute_roof() {
        let small = Roofline::cape(&CapeConfig::cape32k());
        let big = Roofline::cape(&CapeConfig::cape131k());
        assert!((big.peak_gops / small.peak_gops - 4.0).abs() < 1e-9);
        assert_eq!(big.peak_gbps, small.peak_gbps);
    }

    #[test]
    fn attainable_follows_the_min_rule() {
        let r = Roofline::new(100.0, 10.0);
        assert_eq!(r.attainable_gops(1.0), 10.0);
        assert_eq!(r.attainable_gops(10.0), 100.0);
        assert_eq!(r.attainable_gops(1000.0), 100.0);
        assert_eq!(r.attainable_gops(f64::INFINITY), 100.0);
    }

    #[test]
    fn memory_bound_classification() {
        let r = Roofline::new(100.0, 10.0); // ridge at 10 ops/byte
        let low = RooflinePoint {
            name: "streaming".into(),
            intensity: 1.0,
            gops: 5.0,
        };
        let high = RooflinePoint {
            name: "compute".into(),
            intensity: 50.0,
            gops: 80.0,
        };
        assert!(low.is_memory_bound(&r));
        assert!(!high.is_memory_bound(&r));
        assert!((low.efficiency(&r) - 0.5).abs() < 1e-9);
    }
}

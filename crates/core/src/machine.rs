//! The integrated CAPE machine.

use cape_cp::{
    ControlProcessor, Coprocessor, CpError, DrainReason, SliceOutcome, VectorCommit, VectorFault,
};
use cape_csb::{
    Csb, CsbSnapshot, FaultConfig, FaultKind, FaultStats, MicroOpStats, RemapOutcome, ScrubReport,
};
use cape_isa::{Instr, Program, Sew, VAluOp};
use cape_mem::{Hbm, MainMemory};
use cape_ucode::{
    fuse_window, window_fingerprint, CompiledOp, LogicOp, PostProcess, Sequencer, VectorOp,
};
use cape_vcu::{ProgramCache, Vcu};
use cape_vmu::Vmu;

use crate::config::CapeConfig;
use crate::report::{RunReport, WindowFlushes};
use crate::timing::microop_energy_pj;

/// Why a pending fusion window is being committed to the CSB. Each
/// variant maps onto one counter of [`WindowFlushes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushReason {
    /// An effective `vl`/`vstart` change (`vsetvli`/`vsetstart` that
    /// actually moved the window).
    Vsetvli,
    /// A vector instruction whose result crosses to the scalar side.
    ScalarResult,
    /// A VMU transfer needs committed CSB state.
    Vmu,
    /// Slice preemption at a vector-budget boundary.
    Preempt,
    /// A context save/restore is switching jobs.
    CtxSwitch,
    /// Fault machinery (scrub/remap/spares/watchdog/rejection).
    Fault,
    /// End-of-run drain or direct CSB access.
    Drain,
    /// The window reached `fusion_window` capacity.
    Capacity,
}

/// A suspended tenant's complete architectural vector state: the full
/// CSB register file plus the vector CSRs (`sew`, `vstart`, `vl`) and
/// any armed page-fault injection. Saving and restoring one of these
/// around another tenant's slice is what lets a scheduler multiplex a
/// single [`CapeMachine`] without cross-tenant corruption.
///
/// Cloning is cheap: the register image is shared behind an `Arc`.
#[derive(Debug, Clone)]
pub struct MachineContext {
    snapshot: CsbSnapshot,
    sew: Sew,
    vstart: usize,
    vl: usize,
    fault_at_element: Option<usize>,
}

/// A monotonic snapshot of the machine's cumulative activity counters.
/// Unlike [`CapeMachine::run`], which resets counters per run, slice
/// scheduling needs *delta* attribution: take one snapshot before a
/// slice and one after, and [`MachineCounters::since`] yields the
/// slice's own share of energy, traffic and cache activity.
///
/// Not `Copy`: the embedded [`FaultStats`] carries per-spare remap
/// counts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MachineCounters {
    /// CSB dynamic energy in picojoules.
    pub energy_pj: f64,
    /// Element-wise vector operations executed.
    pub lane_ops: u64,
    /// Cycles spent in VMU transfers.
    pub vmu_cycles: u64,
    /// Cycles spent in VCU compute.
    pub vcu_cycles: u64,
    /// Bytes read from HBM.
    pub hbm_bytes_read: u64,
    /// Bytes written to HBM.
    pub hbm_bytes_written: u64,
    /// Program-cache hits.
    pub cache_hits: u64,
    /// Program-cache misses (fresh compiles).
    pub cache_misses: u64,
    /// Page faults taken by vector memory instructions.
    pub faults_taken: u64,
    /// Fusion windows of two or more instructions broadcast as one
    /// super-program.
    pub fused_windows: u64,
    /// Vector instructions executed inside those fused windows.
    pub fused_ops: u64,
    /// Pool broadcasts (fan-out + join) eliminated by fusion: each
    /// `n`-op window costs one broadcast instead of `n`.
    pub fused_joins_saved: u64,
    /// Window flushes, by cause.
    pub window_flushes: WindowFlushes,
    /// Plan-level stores the window compiler's peepholes removed from
    /// executed fused windows.
    pub dead_stores_eliminated: u64,
    /// CSB microops emitted.
    pub microops: MicroOpStats,
    /// Hardware fault-injection activity (zero unless the fault layer is
    /// armed via [`CapeMachine::enable_fault_injection`]).
    pub fault: FaultStats,
}

impl MachineCounters {
    /// Adds `delta` into this accumulator (field-wise sum) — how a
    /// scheduler totals a job's activity across its slices.
    pub fn accumulate(&mut self, delta: &Self) {
        self.energy_pj += delta.energy_pj;
        self.lane_ops += delta.lane_ops;
        self.vmu_cycles += delta.vmu_cycles;
        self.vcu_cycles += delta.vcu_cycles;
        self.hbm_bytes_read += delta.hbm_bytes_read;
        self.hbm_bytes_written += delta.hbm_bytes_written;
        self.cache_hits += delta.cache_hits;
        self.cache_misses += delta.cache_misses;
        self.faults_taken += delta.faults_taken;
        self.fused_windows += delta.fused_windows;
        self.fused_ops += delta.fused_ops;
        self.fused_joins_saved += delta.fused_joins_saved;
        self.window_flushes.accumulate(&delta.window_flushes);
        self.dead_stores_eliminated += delta.dead_stores_eliminated;
        self.fault.accumulate(&delta.fault);
        self.microops.searches_bs += delta.microops.searches_bs;
        self.microops.searches_bp += delta.microops.searches_bp;
        self.microops.updates_bs += delta.microops.updates_bs;
        self.microops.updates_bp += delta.microops.updates_bp;
        self.microops.updates_prop += delta.microops.updates_prop;
        self.microops.reads += delta.microops.reads;
        self.microops.writes += delta.microops.writes;
        self.microops.reduces += delta.microops.reduces;
        self.microops.tag_combines += delta.microops.tag_combines;
    }

    /// The activity between `earlier` and `self` (field-wise difference).
    pub fn since(&self, earlier: &Self) -> Self {
        Self {
            energy_pj: self.energy_pj - earlier.energy_pj,
            lane_ops: self.lane_ops - earlier.lane_ops,
            vmu_cycles: self.vmu_cycles - earlier.vmu_cycles,
            vcu_cycles: self.vcu_cycles - earlier.vcu_cycles,
            hbm_bytes_read: self.hbm_bytes_read - earlier.hbm_bytes_read,
            hbm_bytes_written: self.hbm_bytes_written - earlier.hbm_bytes_written,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            faults_taken: self.faults_taken - earlier.faults_taken,
            fused_windows: self.fused_windows - earlier.fused_windows,
            fused_ops: self.fused_ops - earlier.fused_ops,
            fused_joins_saved: self.fused_joins_saved - earlier.fused_joins_saved,
            window_flushes: self.window_flushes.since(&earlier.window_flushes),
            dead_stores_eliminated: self.dead_stores_eliminated - earlier.dead_stores_eliminated,
            fault: self.fault.since(&earlier.fault),
            microops: MicroOpStats {
                searches_bs: self.microops.searches_bs - earlier.microops.searches_bs,
                searches_bp: self.microops.searches_bp - earlier.microops.searches_bp,
                updates_bs: self.microops.updates_bs - earlier.microops.updates_bs,
                updates_bp: self.microops.updates_bp - earlier.microops.updates_bp,
                updates_prop: self.microops.updates_prop - earlier.microops.updates_prop,
                reads: self.microops.reads - earlier.microops.reads,
                writes: self.microops.writes - earlier.microops.writes,
                reduces: self.microops.reduces - earlier.microops.reduces,
                tag_combines: self.microops.tag_combines - earlier.microops.tag_combines,
            },
        }
    }
}

/// One vector instruction buffered in the fusion window: the op, the
/// element width it committed under, and its already-compiled program
/// (cheap to hold — the program body is shared behind `Arc`s).
#[derive(Debug)]
struct PendingOp {
    op: VectorOp,
    sew_bits: u32,
    compiled: CompiledOp,
}

/// A complete CAPE system: control processor, VCU, VMU, CSB and HBM
/// (Fig. 2 of the paper), runnable on [`Program`]s.
#[derive(Debug)]
pub struct CapeMachine {
    config: CapeConfig,
    csb: Csb,
    vcu: Vcu,
    /// Compiled microop programs, keyed by `(VectorOp, SEW)`. Persists
    /// across runs — a warm cache models the chain controllers' TTM
    /// staying loaded.
    program_cache: ProgramCache,
    vmu: Vmu,
    hbm: Hbm,
    energy_pj: f64,
    lane_ops: u64,
    vmu_cycles: u64,
    vcu_cycles: u64,
    /// Selected element width (set by `vsetvli`).
    sew: Sew,
    /// Pending page-fault injection for the next vector load/store: the
    /// element index at which the transfer faults once (testing hook for
    /// the Section V-C restart mechanism).
    fault_at_element: Option<usize>,
    /// Page faults taken by vector memory instructions.
    faults_taken: u64,
    /// Vector instructions committed (timing and energy already charged)
    /// whose CSB broadcast is deferred: at the next fusion barrier the
    /// whole window executes as one fused super-program with a single
    /// pool fan-out and join.
    pending_window: Vec<PendingOp>,
    /// Fusion windows of ≥ 2 ops broadcast as one program.
    fused_windows: u64,
    /// Vector instructions executed inside those windows.
    fused_ops: u64,
    /// Broadcast joins eliminated by fusion (Σ window_len − 1).
    fused_joins_saved: u64,
    /// Window flushes, attributed by cause at each flush site.
    window_flushes: WindowFlushes,
    /// Plan-level stores the window compiler retired from executed fused
    /// windows (cache hits still count: the figure is compile-time
    /// metadata carried on the cached program).
    dead_stores: u64,
}

impl CapeMachine {
    /// Builds a machine for the given configuration.
    pub fn new(config: CapeConfig) -> Self {
        Self {
            config,
            csb: Csb::new(config.geometry()),
            vcu: Vcu::new(config.chains),
            program_cache: ProgramCache::new(config.program_cache_capacity),
            vmu: Vmu::new(config.freq_ghz),
            hbm: Hbm::new(config.hbm),
            energy_pj: 0.0,
            lane_ops: 0,
            vmu_cycles: 0,
            vcu_cycles: 0,
            sew: Sew::E32,
            fault_at_element: None,
            faults_taken: 0,
            pending_window: Vec::new(),
            fused_windows: 0,
            fused_ops: 0,
            fused_joins_saved: 0,
            window_flushes: WindowFlushes::default(),
            dead_stores: 0,
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> CapeConfig {
        self.config
    }

    /// Read access to the CSB (for checking results in tests/examples).
    pub fn csb(&self) -> &Csb {
        &self.csb
    }

    /// Mutable access to the CSB (bring-up hook). Flushes any pending
    /// fusion window first so direct reads and writes observe fully
    /// committed architectural state.
    pub fn csb_mut(&mut self) -> &mut Csb {
        self.flush_window();
        &mut self.csb
    }

    /// Clears all run counters and CSB statistics (contents are kept).
    pub fn reset_counters(&mut self) {
        self.csb.reset_stats();
        self.hbm.reset();
        self.energy_pj = 0.0;
        self.lane_ops = 0;
        self.vmu_cycles = 0;
        self.vcu_cycles = 0;
    }

    /// Runs a program to its `halt`, returning the run report.
    ///
    /// # Errors
    ///
    /// Returns [`CpError`] when the program escapes its address range or
    /// exceeds the configured instruction budget.
    pub fn run(&mut self, program: &Program, mem: &mut MainMemory) -> Result<RunReport, CpError> {
        self.reset_counters();
        // The cache itself stays warm across runs; the report counts this
        // run's lookups only.
        let (hits0, misses0) = (self.program_cache.hits(), self.program_cache.misses());
        let mut cp = ControlProcessor::new(self.config.mem_latency_cycles);
        let max = self.config.max_instructions;
        // Split borrow: the CP drives `self` as the coprocessor.
        let (fw0, fo0, fj0) = (self.fused_windows, self.fused_ops, self.fused_joins_saved);
        let (wf0, ds0) = (self.window_flushes, self.dead_stores);
        let cp_result = {
            let this: &mut CapeMachine = self;
            let mut driver = MachineCoprocessor { machine: this };
            cp.run(program, mem, &mut driver, max)
        };
        // A run that errored out (budget, vector fault) still owes the
        // CSB its deferred broadcasts; normal exits drained via the CP.
        self.flush_window();
        let cp_stats = cp_result?;
        Ok(RunReport {
            cycles: cp_stats.cycles,
            freq_ghz: self.config.freq_ghz,
            cp: cp_stats,
            microops: self.csb.stats(),
            csb_energy_uj: self.energy_pj / 1e6,
            hbm_bytes_read: self.hbm.bytes_read(),
            hbm_bytes_written: self.hbm.bytes_written(),
            lane_ops: self.lane_ops,
            vmu_cycles: self.vmu_cycles,
            vcu_cycles: self.vcu_cycles,
            program_cache_hits: self.program_cache.hits() - hits0,
            program_cache_misses: self.program_cache.misses() - misses0,
            fused_windows: self.fused_windows - fw0,
            fused_ops: self.fused_ops - fo0,
            fused_joins_saved: self.fused_joins_saved - fj0,
            window_flushes: self.window_flushes.since(&wf0),
            dead_stores_eliminated: self.dead_stores - ds0,
        })
    }

    /// Arms a one-shot page fault at `elem` for the next vector memory
    /// instruction, exercising the Section V-C restart path: the transfer
    /// stops at the faulting index, `vstart` is set there, the fault is
    /// "handled" (a fixed penalty), and the instruction restarts.
    pub fn inject_page_fault(&mut self, elem: usize) {
        self.fault_at_element = Some(elem);
    }

    /// Page faults taken by vector memory instructions so far.
    pub fn faults_taken(&self) -> u64 {
        self.faults_taken
    }

    /// Takes the pending fault if it lies inside the current window.
    fn pending_fault_in_window(&mut self) -> Option<usize> {
        let (vstart, vl) = (self.csb.vstart(), self.csb.vl());
        match self.fault_at_element.take() {
            Some(f) if f >= vstart && f < vl => {
                self.faults_taken += 1;
                Some(f)
            }
            other => {
                self.fault_at_element = other;
                None
            }
        }
    }

    /// Runs a vector memory transfer with Section V-C fault/restart
    /// semantics: on a fault at element `f`, the transfer completes
    /// `[vstart, f)`, the handler runs, and the instruction restarts at
    /// `vstart = f` — element indexing is absolute, so the retry resumes
    /// exactly where the first attempt stopped.
    fn faultable_transfer(
        &mut self,
        mem: &mut MainMemory,
        mut transfer: impl FnMut(&mut Self, &mut MainMemory) -> cape_vmu::VmuTransfer,
    ) -> u64 {
        const FAULT_HANDLER_CYCLES: u64 = 2000; // OS walk + fill, ~750 ns
        match self.pending_fault_in_window() {
            None => transfer(self, mem).cycles,
            Some(f) => {
                let (vstart, vl) = (self.csb.vstart(), self.csb.vl());
                self.csb.set_active_window(vstart, f);
                let first = transfer(self, mem).cycles;
                self.csb.set_active_window(f, vl);
                let second = transfer(self, mem).cycles;
                // Architectural vstart returns to 0 once the restarted
                // instruction commits.
                self.csb.set_active_window(0, vl);
                first + FAULT_HANDLER_CYCLES + second
            }
        }
    }

    fn active_lanes(&self) -> u64 {
        (self.csb.vl() - self.csb.vstart()) as u64
    }

    fn active_chains(&self) -> u64 {
        (self.config.chains - self.csb.idle_chains()) as u64
    }

    /// The VCU's microcode program cache (hit/miss observability).
    pub fn program_cache(&self) -> &ProgramCache {
        &self.program_cache
    }

    /// Attributes subsequent program-cache lookups to `tenant` (see
    /// [`ProgramCache::set_tenant`]). A scheduler calls this before each
    /// tenant's slice so cross-tenant cache amortization is measurable.
    pub fn set_tenant(&mut self, tenant: u32) {
        self.program_cache.set_tenant(tenant);
    }

    /// Captures the current tenant's full vector state: every CSB
    /// register (data, metadata and match state), the selected element
    /// width, the active window and any armed page-fault injection.
    pub fn save_context(&mut self) -> MachineContext {
        // Preemption point: the snapshot must capture fully committed
        // state, never a half-deferred window.
        self.flush_window_as(FlushReason::CtxSwitch);
        MachineContext {
            snapshot: self.csb.save_registers(),
            sew: self.sew,
            vstart: self.csb.vstart(),
            vl: self.csb.vl(),
            fault_at_element: self.fault_at_element,
        }
    }

    /// Restores a context captured by [`CapeMachine::save_context`] (or
    /// built by [`CapeMachine::fresh_context`]), making the machine
    /// bit-identical — registers, CSRs and pending faults — to the
    /// moment the context was saved.
    ///
    /// # Panics
    ///
    /// Panics if the context was captured on a machine with a different
    /// CSB geometry.
    pub fn restore_context(&mut self, ctx: &MachineContext) {
        // A deferred window belongs to the outgoing tenant's state; it
        // must land before that state is replaced.
        self.flush_window_as(FlushReason::CtxSwitch);
        self.csb.restore_registers(&ctx.snapshot);
        self.csb.set_active_window(ctx.vstart, ctx.vl);
        self.sew = ctx.sew;
        self.fault_at_element = ctx.fault_at_element;
    }

    /// The context of a job that has never run: zeroed registers, 32-bit
    /// elements, a fully open window and no pending fault — exactly the
    /// state of a newly built machine. Restoring this before a fresh
    /// job's first slice guarantees it cannot observe a predecessor.
    pub fn fresh_context(&self) -> MachineContext {
        MachineContext {
            snapshot: CsbSnapshot::zeroed(self.config.geometry()),
            sew: Sew::E32,
            vstart: 0,
            vl: self.config.max_vl(),
            fault_at_element: None,
        }
    }

    /// Cycle cost of moving one full register-file context in one
    /// direction between the CSB and memory (a scheduler charges this
    /// once per save and once per restore).
    pub fn context_transfer_cycles(&self) -> u64 {
        self.vmu
            .context_transfer_cycles(&self.hbm, self.config.chains)
    }

    /// A control processor configured for this machine's memory latency.
    /// Slice scheduling keeps one per job — the CP *is* the job's scalar
    /// state (PC, registers, clock) across preemptions.
    pub fn new_control_processor(&self) -> ControlProcessor {
        ControlProcessor::new(self.config.mem_latency_cycles)
    }

    /// A snapshot of the cumulative activity counters, for per-slice
    /// delta attribution via [`MachineCounters::since`].
    pub fn counters(&self) -> MachineCounters {
        MachineCounters {
            energy_pj: self.energy_pj,
            lane_ops: self.lane_ops,
            vmu_cycles: self.vmu_cycles,
            vcu_cycles: self.vcu_cycles,
            hbm_bytes_read: self.hbm.bytes_read(),
            hbm_bytes_written: self.hbm.bytes_written(),
            cache_hits: self.program_cache.hits(),
            cache_misses: self.program_cache.misses(),
            faults_taken: self.faults_taken,
            fused_windows: self.fused_windows,
            fused_ops: self.fused_ops,
            fused_joins_saved: self.fused_joins_saved,
            window_flushes: self.window_flushes,
            dead_stores_eliminated: self.dead_stores,
            fault: self.csb.fault_stats(),
            microops: self.csb.stats(),
        }
    }

    /// Arms the CSB hardware fault layer: seeded injection of stuck-at
    /// bits, transient flips and dead blocks, plus the parity/golden
    /// detection tiers and spare-block remap machinery. With the layer
    /// disarmed (the default) the machine pays a single branch per
    /// vector broadcast.
    pub fn enable_fault_injection(&mut self, config: FaultConfig) {
        self.csb.enable_fault_injection(config);
    }

    /// Whether the hardware fault layer is armed.
    pub fn fault_injection_enabled(&self) -> bool {
        self.csb.fault_injection_enabled()
    }

    /// Cumulative hardware fault-layer counters (zeroes when disarmed).
    pub fn fault_stats(&self) -> FaultStats {
        self.csb.fault_stats()
    }

    /// Blocks flagged faulty and awaiting quarantine-and-remap.
    pub fn pending_faults(&self) -> usize {
        self.csb.pending_faults()
    }

    /// Runs one parity scrub pass over every logical block (`None` when
    /// the fault layer is disarmed). A scheduler calls this between
    /// slices so stuck-at faults are caught even on idle blocks.
    pub fn scrub(&mut self) -> Option<ScrubReport> {
        self.flush_window_as(FlushReason::Fault);
        self.csb.scrub()
    }

    /// Quarantines every flagged block and remaps it onto a spare.
    /// Blocks that fail (spares exhausted) stay pending and the machine
    /// is degraded — the caller must fail jobs typed, not mask it.
    pub fn quarantine_and_remap(&mut self) -> RemapOutcome {
        self.flush_window_as(FlushReason::Fault);
        self.csb.quarantine_and_remap()
    }

    /// Installs `per_shard` fresh spare blocks in every shard and re-runs
    /// quarantine-and-remap — the in-simulation model of a field repair
    /// (a technician re-racking spare capacity). Returns the remap
    /// outcome; on success the machine has no pending faults and a
    /// replenished spare inventory, the precondition for a fleet
    /// scheduler to re-admit it. A no-op returning the default outcome
    /// when the fault layer is disarmed.
    pub fn service_spares(&mut self, per_shard: usize) -> RemapOutcome {
        self.flush_window_as(FlushReason::Fault);
        self.csb.service_spares(per_shard)
    }

    /// Injects one fault at chain `i` (testing hook; requires the fault
    /// layer to be armed).
    pub fn inject_csb_fault(&mut self, chain: usize, kind: FaultKind) {
        self.csb.inject_fault(chain, kind);
    }

    /// Spare physical blocks still available across all shards.
    pub fn spare_blocks_free(&self) -> usize {
        self.csb.spare_blocks_free()
    }

    /// Physical blocks quarantined so far.
    pub fn quarantined_blocks(&self) -> usize {
        self.csb.quarantined_blocks()
    }

    /// Runs `cp` on `program` until it halts or `max_vector` more vector
    /// instructions commit (see [`ControlProcessor::run_slice`]). Unlike
    /// [`CapeMachine::run`] this never resets counters — a scheduler
    /// interleaving many jobs attributes activity per slice with
    /// [`CapeMachine::counters`] deltas instead.
    ///
    /// `slice_fuel` is the watchdog: the maximum instructions this one
    /// slice may commit before the CP gives up and returns
    /// [`SliceOutcome::TimedOut`]. A timed-out CP stopped at an
    /// arbitrary instruction boundary — restore a checkpoint; never
    /// resume it. Pass `u64::MAX` to disable the watchdog.
    ///
    /// # Errors
    ///
    /// Returns [`CpError`] when the program escapes its address range,
    /// exceeds the configured instruction budget, or a vector
    /// instruction is rejected by the microcode sequencer
    /// ([`CpError::VectorFault`]).
    pub fn run_slice(
        &mut self,
        cp: &mut ControlProcessor,
        program: &Program,
        mem: &mut MainMemory,
        max_vector: u64,
        slice_fuel: u64,
    ) -> Result<SliceOutcome, CpError> {
        let max = self.config.max_instructions;
        let outcome = {
            let this: &mut CapeMachine = self;
            let mut driver = MachineCoprocessor { machine: this };
            cp.run_slice(program, mem, &mut driver, max, max_vector, slice_fuel)
        };
        // Clean exits drained via the CP's `drain` hook; errored slices
        // still owe the CSB their deferred broadcasts.
        self.flush_window();
        outcome
    }

    /// True when `op` can join a fusion window: nothing crosses back to
    /// the scalar side after its broadcast. Exactly the ops whose
    /// compiled [`PostProcess`] is `None` — reductions, mask queries and
    /// the functionally-modeled `vid.v` are barriers.
    fn fusible(op: &VectorOp) -> bool {
        !matches!(
            op,
            VectorOp::RedSum { .. }
                | VectorOp::Cpop { .. }
                | VectorOp::First { .. }
                | VectorOp::Vid { .. }
        )
    }

    /// Executes every deferred vector instruction in the pending fusion
    /// window. A one-op window replays its compiled program directly
    /// (identical to the unfused path); longer windows are fused —
    /// through the VCU's fingerprint-keyed window cache — into one
    /// super-program with a single pool broadcast and join.
    ///
    /// Timing, energy and lane counters were already charged at issue
    /// (they are pure functions of each op's data-independent microop
    /// statistics), so flushing only performs the deferred CSB mutation
    /// and bumps the fusion observability counters.
    pub fn flush_window(&mut self) {
        self.flush_window_as(FlushReason::Drain);
    }

    /// [`CapeMachine::flush_window`] with an explicit cause for the
    /// flush-reason counters. Empty windows cost (and count) nothing.
    fn flush_window_as(&mut self, reason: FlushReason) {
        if self.pending_window.is_empty() {
            return;
        }
        match reason {
            FlushReason::Vsetvli => self.window_flushes.vsetvli += 1,
            FlushReason::ScalarResult => self.window_flushes.scalar_result += 1,
            FlushReason::Vmu => self.window_flushes.vmu += 1,
            FlushReason::Preempt => self.window_flushes.preempt += 1,
            FlushReason::CtxSwitch => self.window_flushes.ctx_switch += 1,
            FlushReason::Fault => self.window_flushes.fault += 1,
            FlushReason::Drain => self.window_flushes.drain += 1,
            FlushReason::Capacity => self.window_flushes.capacity += 1,
        }
        let pending = std::mem::take(&mut self.pending_window);
        let sew = pending[0].sew_bits as usize;
        if pending.len() == 1 {
            Sequencer::with_width(&mut self.csb, sew).run_program(&pending[0].compiled);
            return;
        }
        let key: Vec<(VectorOp, u32)> = pending.iter().map(|p| (p.op, p.sew_bits)).collect();
        let fingerprint = window_fingerprint(&key);
        let fused = match self.program_cache.window_lookup(fingerprint, &key) {
            Some(fused) => fused,
            None => {
                let parts: Vec<&CompiledOp> = pending.iter().map(|p| &p.compiled).collect();
                let fused = fuse_window(&parts, self.config.fusion_reorder);
                self.program_cache
                    .window_insert(fingerprint, &key, fused.clone());
                fused
            }
        };
        self.fused_windows += 1;
        self.fused_ops += pending.len() as u64;
        self.fused_joins_saved += pending.len() as u64 - 1;
        self.dead_stores += u64::from(fused.program().dead_stores());
        Sequencer::with_width(&mut self.csb, sew).run_program(&fused);
    }

    /// Buffers a fusible vector instruction: compiles (through the
    /// per-op cache), charges its modeled cycles/energy/lanes now, and
    /// defers the broadcast into the pending window.
    fn buffer_vector_op(&mut self, op: &VectorOp) -> Result<VectorCommit, VectorFault> {
        let sew_bits = self.sew.bits();
        let compiled = match self.program_cache.try_get_or_compile(op, sew_bits) {
            Ok(compiled) => compiled.clone(),
            Err(e) => {
                // The rejection terminates the run; earlier deferred
                // work must still reach the CSB first.
                self.flush_window_as(FlushReason::Fault);
                return Err(VectorFault::Rejected {
                    detail: e.to_string(),
                });
            }
        };
        debug_assert_eq!(
            compiled.post(),
            PostProcess::None,
            "fusible() and the lowering disagree on {op:?}"
        );
        let stats = compiled.program().stats();
        let cycles = self.vcu.plan_cycles(op, &stats, sew_bits);
        self.energy_pj += microop_energy_pj(&stats, self.active_chains());
        self.lane_ops += self.active_lanes();
        self.vcu_cycles += cycles;
        self.pending_window.push(PendingOp {
            op: *op,
            sew_bits,
            compiled,
        });
        if self.pending_window.len() >= self.config.fusion_window {
            self.flush_window_as(FlushReason::Capacity);
        }
        Ok(VectorCommit {
            cycles,
            rd_value: None,
        })
    }

    fn run_vcu(&mut self, op: &VectorOp) -> Result<VectorCommit, VectorFault> {
        if self.config.fusion_window > 1 && Self::fusible(op) {
            return self.buffer_vector_op(op);
        }
        // Barrier op (its scalar result is consumed immediately): land
        // every deferred broadcast, then execute unfused.
        self.flush_window_as(FlushReason::ScalarResult);
        let r = self
            .vcu
            .try_execute_sew_cached(&mut self.csb, op, self.sew.bits(), &mut self.program_cache)
            .map_err(|e| VectorFault::Rejected {
                detail: e.to_string(),
            })?;
        self.energy_pj += microop_energy_pj(&r.stats, self.active_chains());
        self.lane_ops += self.active_lanes();
        self.vcu_cycles += r.cycles;
        Ok(VectorCommit {
            cycles: r.cycles,
            rd_value: r.scalar,
        })
    }

    fn dispatch(
        &mut self,
        instr: &Instr,
        rs1: i64,
        rs2: i64,
        mem: &mut MainMemory,
    ) -> Result<VectorCommit, VectorFault> {
        Ok(match *instr {
            Instr::Vsetvli { sew, .. } => {
                // Grant min(requested, VLMAX), select the element width,
                // and reset vstart (RVV).
                let granted = (rs1.max(0) as usize).min(self.config.max_vl());
                // Only an *effective* window change is a fusion barrier:
                // deferred ops must broadcast under the window they
                // committed with. A vsetvli that provably grants the
                // current vl with vstart already 0 leaves the active
                // window untouched — it joins the window as a no-op (SEW
                // reselection alone is fusion-transparent; each buffered
                // op carries its own width).
                if granted != self.csb.vl() || self.csb.vstart() != 0 {
                    self.flush_window_as(FlushReason::Vsetvli);
                    self.csb.set_active_window(0, granted);
                }
                self.sew = sew;
                VectorCommit {
                    cycles: self.vcu.cmd_dist_cycles(),
                    rd_value: Some(granted as i64),
                }
            }
            Instr::Vsetstart { .. } => {
                let vl = self.csb.vl();
                let vstart = (rs1.max(0) as usize).min(vl);
                // Same classification: an unchanged vstart is a no-op
                // marker, not a barrier.
                if vstart != self.csb.vstart() {
                    self.flush_window_as(FlushReason::Vsetvli);
                    self.csb.set_active_window(vstart, vl);
                }
                VectorCommit {
                    cycles: self.vcu.cmd_dist_cycles(),
                    rd_value: None,
                }
            }
            Instr::Vle32 { vd, .. } => {
                // VMU transfers read/write CSB rows directly.
                self.flush_window_as(FlushReason::Vmu);
                let addr = rs1 as u64;
                let reg = vd.index();
                let cycles = self.faultable_transfer(mem, |m, mem| {
                    m.vmu.load(&mut m.csb, mem, &mut m.hbm, reg, addr)
                });
                self.vmu_cycles += cycles;
                VectorCommit {
                    cycles,
                    rd_value: None,
                }
            }
            Instr::Vse32 { vs3, .. } => {
                self.flush_window_as(FlushReason::Vmu);
                let addr = rs1 as u64;
                let reg = vs3.index();
                let cycles = self.faultable_transfer(mem, |m, mem| {
                    m.vmu.store(&m.csb, mem, &mut m.hbm, reg, addr)
                });
                self.vmu_cycles += cycles;
                VectorCommit {
                    cycles,
                    rd_value: None,
                }
            }
            Instr::Vlrw { vd, .. } => {
                self.flush_window_as(FlushReason::Vmu);
                let chunk = rs2.max(1) as usize;
                let t = self.vmu.load_replica(
                    &mut self.csb,
                    mem,
                    &mut self.hbm,
                    vd.index(),
                    rs1 as u64,
                    chunk,
                );
                self.vmu_cycles += t.cycles;
                VectorCommit {
                    cycles: t.cycles,
                    rd_value: None,
                }
            }
            Instr::VOpVv { op, vd, lhs, rhs } => {
                let (vd, vs1, vs2) = (vd.index(), lhs.index(), rhs.index());
                let vop = match op {
                    VAluOp::Add => VectorOp::Add { vd, vs1, vs2 },
                    VAluOp::Sub => VectorOp::Sub { vd, vs1, vs2 },
                    VAluOp::Mul => VectorOp::Mul { vd, vs1, vs2 },
                    VAluOp::And => VectorOp::And { vd, vs1, vs2 },
                    VAluOp::Or => VectorOp::Or { vd, vs1, vs2 },
                    VAluOp::Xor => VectorOp::Xor { vd, vs1, vs2 },
                    VAluOp::Mseq => VectorOp::Mseq { vd, vs1, vs2 },
                    VAluOp::Msne => VectorOp::Msne { vd, vs1, vs2 },
                    VAluOp::Mslt => VectorOp::Mslt {
                        vd,
                        vs1,
                        vs2,
                        signed: true,
                    },
                    VAluOp::Msltu => VectorOp::Mslt {
                        vd,
                        vs1,
                        vs2,
                        signed: false,
                    },
                    VAluOp::Min => VectorOp::MinMax {
                        vd,
                        vs1,
                        vs2,
                        max: false,
                        signed: true,
                    },
                    VAluOp::Minu => VectorOp::MinMax {
                        vd,
                        vs1,
                        vs2,
                        max: false,
                        signed: false,
                    },
                    VAluOp::Max => VectorOp::MinMax {
                        vd,
                        vs1,
                        vs2,
                        max: true,
                        signed: true,
                    },
                    VAluOp::Maxu => VectorOp::MinMax {
                        vd,
                        vs1,
                        vs2,
                        max: true,
                        signed: false,
                    },
                };
                self.run_vcu(&vop)?
            }
            Instr::VOpVx { op, vd, lhs, .. } => {
                let (vd, vs1, rs) = (vd.index(), lhs.index(), rs1 as u32);
                let vop = match op {
                    VAluOp::Add => VectorOp::AddScalar { vd, vs1, rs },
                    VAluOp::Sub => VectorOp::SubScalar { vd, vs1, rs },
                    VAluOp::Mul => VectorOp::MulScalar { vd, vs1, rs },
                    VAluOp::And => VectorOp::LogicScalar {
                        op: LogicOp::And,
                        vd,
                        vs1,
                        rs,
                    },
                    VAluOp::Or => VectorOp::LogicScalar {
                        op: LogicOp::Or,
                        vd,
                        vs1,
                        rs,
                    },
                    VAluOp::Xor => VectorOp::LogicScalar {
                        op: LogicOp::Xor,
                        vd,
                        vs1,
                        rs,
                    },
                    VAluOp::Mseq => VectorOp::MseqScalar { vd, vs1, rs },
                    VAluOp::Msne => VectorOp::MsneScalar { vd, vs1, rs },
                    VAluOp::Mslt => VectorOp::MsltScalar {
                        vd,
                        vs1,
                        rs,
                        signed: true,
                    },
                    VAluOp::Msltu => VectorOp::MsltScalar {
                        vd,
                        vs1,
                        rs,
                        signed: false,
                    },
                    VAluOp::Min => VectorOp::MinMaxScalar {
                        vd,
                        vs1,
                        rs,
                        max: false,
                        signed: true,
                    },
                    VAluOp::Minu => VectorOp::MinMaxScalar {
                        vd,
                        vs1,
                        rs,
                        max: false,
                        signed: false,
                    },
                    VAluOp::Max => VectorOp::MinMaxScalar {
                        vd,
                        vs1,
                        rs,
                        max: true,
                        signed: true,
                    },
                    VAluOp::Maxu => VectorOp::MinMaxScalar {
                        vd,
                        vs1,
                        rs,
                        max: true,
                        signed: false,
                    },
                };
                self.run_vcu(&vop)?
            }
            Instr::VmergeVvm {
                vd,
                on_false,
                on_true,
            } => self.run_vcu(&VectorOp::Merge {
                vd: vd.index(),
                vs1: on_true.index(),
                vs2: on_false.index(),
            })?,
            Instr::VredsumVs { vd, vs2, vs1 } => {
                // The seed read below observes CSB state, so deferred
                // broadcasts must land first.
                self.flush_window_as(FlushReason::ScalarResult);
                // vd[0] = vs1[0] + sum(vs2): run the tree reduction, then
                // fold in the scalar seed held in vs1[0].
                let seed = self.csb.read_element(vs1.index(), 0);
                let commit = self.run_vcu(&VectorOp::RedSum {
                    vd: vd.index(),
                    vs: vs2.index(),
                })?;
                let sum = commit.rd_value.unwrap_or(0) as u32;
                let total = sum.wrapping_add(seed);
                self.csb.write_element(vd.index(), 0, total);
                VectorCommit {
                    cycles: commit.cycles,
                    rd_value: None,
                }
            }
            Instr::VmvVx { vd, .. } => self.run_vcu(&VectorOp::Broadcast {
                vd: vd.index(),
                rs: rs1 as u32,
            })?,
            Instr::VmvVv { vd, vs } => self.run_vcu(&VectorOp::Mv {
                vd: vd.index(),
                vs: vs.index(),
            })?,
            Instr::VrsubVx { vd, lhs, .. } => self.run_vcu(&VectorOp::RsubScalar {
                vd: vd.index(),
                vs1: lhs.index(),
                rs: rs1 as u32,
            })?,
            Instr::VmaccVv { vd, vs1, vs2 } => self.run_vcu(&VectorOp::Macc {
                vd: vd.index(),
                vs1: vs1.index(),
                vs2: vs2.index(),
            })?,
            Instr::VsraVi { vd, vs, imm } => self.run_vcu(&VectorOp::ShiftRightArith {
                vd: vd.index(),
                vs: vs.index(),
                sh: imm,
            })?,
            Instr::VmvXs { vs, .. } => {
                // Scalar read of a vector result: the fusion barrier.
                self.flush_window_as(FlushReason::ScalarResult);
                // A single-element read: one read microop through the
                // element path, plus command distribution.
                let value = self.csb.read_element(vs.index(), 0);
                self.csb.execute(&cape_csb::MicroOp::Read {
                    subarray: 0,
                    row: vs.index(),
                });
                VectorCommit {
                    cycles: self.vcu.cmd_dist_cycles() + 2,
                    rd_value: Some(i64::from(value)),
                }
            }
            Instr::VcpopM { vs, .. } => self.run_vcu(&VectorOp::Cpop { vs: vs.index() })?,
            Instr::VfirstM { vs, .. } => self.run_vcu(&VectorOp::First { vs: vs.index() })?,
            Instr::VidV { vd } => self.run_vcu(&VectorOp::Vid { vd: vd.index() })?,
            Instr::VsllVi { vd, vs, imm } => self.run_vcu(&VectorOp::ShiftLeft {
                vd: vd.index(),
                vs: vs.index(),
                sh: imm,
            })?,
            Instr::VsrlVi { vd, vs, imm } => self.run_vcu(&VectorOp::ShiftRight {
                vd: vd.index(),
                vs: vs.index(),
                sh: imm,
            })?,
            ref other => {
                debug_assert!(false, "{other} dispatched as vector");
                return Err(VectorFault::NotVector);
            }
        })
    }
}

/// Adapter giving the control processor a `Coprocessor` view of the
/// machine.
struct MachineCoprocessor<'a> {
    machine: &'a mut CapeMachine,
}

impl Coprocessor for MachineCoprocessor<'_> {
    fn execute_vector(
        &mut self,
        instr: &Instr,
        rs1: i64,
        rs2: i64,
        mem: &mut MainMemory,
    ) -> Result<VectorCommit, VectorFault> {
        self.machine.dispatch(instr, rs1, rs2, mem)
    }

    fn drain(&mut self, reason: DrainReason) {
        self.machine.flush_window_as(match reason {
            DrainReason::Exit => FlushReason::Drain,
            DrainReason::Preempt => FlushReason::Preempt,
            DrainReason::Watchdog => FlushReason::Fault,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cape_isa::assemble;

    fn machine() -> CapeMachine {
        CapeMachine::new(CapeConfig::tiny(4))
    }

    #[test]
    fn end_to_end_vector_add() {
        let mut m = machine();
        let mut mem = MainMemory::new();
        let a: Vec<u32> = (0..100).collect();
        let b: Vec<u32> = (0..100).map(|i| i * 3).collect();
        mem.write_u32_slice(0x1000, &a);
        mem.write_u32_slice(0x2000, &b);
        let prog = assemble(
            r"
            li t0, 100
            vsetvli t1, t0, e32,m1
            li a0, 0x1000
            li a1, 0x2000
            li a2, 0x3000
            vle32.v v1, (a0)
            vle32.v v2, (a1)
            vadd.vv v3, v1, v2
            vse32.v v3, (a2)
            halt
        ",
        )
        .unwrap();
        let report = m.run(&prog, &mut mem).unwrap();
        let want: Vec<u32> = (0..100).map(|i| i * 4).collect();
        assert_eq!(mem.read_u32_slice(0x3000, 100), want);
        assert_eq!(report.lane_ops, 100);
        assert!(report.csb_energy_uj > 0.0);
        assert_eq!(report.hbm_bytes_read, 800);
        assert_eq!(report.hbm_bytes_written, 400);
    }

    #[test]
    fn strip_mined_loop_covers_long_vectors() {
        // Process 300 elements on a 128-lane machine via vsetvli strip
        // mining (the vector-length-agnostic pattern of Section V-F).
        let mut m = machine();
        let mut mem = MainMemory::new();
        let a: Vec<u32> = (0..300).map(|i| i * 7).collect();
        mem.write_u32_slice(0x1000, &a);
        let prog = assemble(
            r"
            li t0, 300        # remaining
            li a0, 0x1000     # src
            li a1, 0x8000     # dst
            loop:
              vsetvli t1, t0, e32,m1
              vle32.v v1, (a0)
              vadd.vx v2, v1, t0   # add the remaining count (varies!)
              vse32.v v2, (a1)
              sub t0, t0, t1
              slli t2, t1, 2
              add a0, a0, t2
              add a1, a1, t2
              bnez t0, loop
            halt
        ",
        )
        .unwrap();
        m.run(&prog, &mut mem).unwrap();
        // First strip adds 300, second 172, third 44.
        let out = mem.read_u32_slice(0x8000, 300);
        assert_eq!(out[0], 300);
        assert_eq!(out[127], 127 * 7 + 300);
        assert_eq!(out[128], 128 * 7 + 172);
        assert_eq!(out[299], 299 * 7 + 44);
    }

    #[test]
    fn redsum_seeds_from_vs1() {
        let mut m = machine();
        let mut mem = MainMemory::new();
        mem.write_u32_slice(0x100, &[5, 6, 7]);
        let prog = assemble(
            r"
            li t0, 3
            vsetvli t1, t0
            li a0, 0x100
            vle32.v v1, (a0)
            li t2, 1000
            vmv.v.x v2, t2
            vredsum.vs v3, v1, v2   # v3[0] = v2[0] + sum(v1) = 1018
            vse32.v v3, (a1)
            halt
        ",
        )
        .unwrap();
        m.run(&prog, &mut mem).unwrap();
        assert_eq!(mem.read_u32(0), 1018);
    }

    #[test]
    fn cpop_and_first_reach_scalar_registers() {
        let mut m = machine();
        let mut mem = MainMemory::new();
        let a: Vec<u32> = (0..50).collect();
        mem.write_u32_slice(0x100, &a);
        let prog = assemble(
            r"
            li t0, 50
            vsetvli t1, t0
            li a0, 0x100
            vle32.v v1, (a0)
            li t2, 25
            vmslt.vx v2, v1, t2   # elements < 25
            vcpop.m a2, v2
            vfirst.m a3, v2
            li a4, 0x200
            sw a2, 0(a4)
            sw a3, 4(a4)
            halt
        ",
        )
        .unwrap();
        m.run(&prog, &mut mem).unwrap();
        assert_eq!(mem.read_u32(0x200), 25);
        assert_eq!(mem.read_u32(0x204), 0);
    }

    #[test]
    fn replica_load_supports_matmul_inner_pattern() {
        let mut m = machine();
        let mut mem = MainMemory::new();
        mem.write_u32_slice(0x100, &[1, 2, 3, 4]);
        let prog = assemble(
            r"
            li t0, 12
            vsetvli t1, t0
            li a0, 0x100
            li a1, 4
            vlrw.v v1, a0, a1
            li a2, 0x400
            vse32.v v1, (a2)
            halt
        ",
        )
        .unwrap();
        let report = m.run(&prog, &mut mem).unwrap();
        assert_eq!(
            mem.read_u32_slice(0x400, 12),
            vec![1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4]
        );
        // Replica load fetched 16 bytes, not 48.
        assert_eq!(report.hbm_bytes_read, 16);
    }

    #[test]
    fn narrow_elements_compute_mod_2_pow_sew() {
        let mut m = machine();
        let mut mem = MainMemory::new();
        mem.write_u32_slice(0x1000, &[200, 100, 255, 7]);
        let prog = assemble(
            r"
            li t0, 4
            vsetvli t1, t0, e8, m1
            li a0, 0x1000
            vle32.v v1, (a0)
            vadd.vv v2, v1, v1     # doubles, wrapping at 8 bits
            li a1, 0x2000
            vse32.v v2, (a1)
            halt
        ",
        )
        .unwrap();
        m.run(&prog, &mut mem).unwrap();
        assert_eq!(mem.read_u32_slice(0x2000, 4), vec![144, 200, 254, 14]);
    }

    #[test]
    fn narrow_elements_are_faster() {
        let run_with = |sew: &str| {
            let mut m = machine();
            let mut mem = MainMemory::new();
            mem.write_u32_slice(0x1000, &[1; 64]);
            let prog = assemble(&format!(
                "li t0, 64
vsetvli t1, t0, {sew}, m1
li a0, 0x1000
vle32.v v1, (a0)
vadd.vv v2, v1, v1
halt"
            ))
            .unwrap();
            m.run(&prog, &mut mem).unwrap().cycles
        };
        let (e8, e32) = (run_with("e8"), run_with("e32"));
        assert!(e8 < e32, "8-bit adds ({e8}) must beat 32-bit ({e32})");
    }

    #[test]
    fn min_max_and_macc_instructions_work_end_to_end() {
        let mut m = machine();
        let mut mem = MainMemory::new();
        mem.write_u32_slice(0x1000, &[5, 10, 15, 20]);
        mem.write_u32_slice(0x2000, &[12, 8, 15, 2]);
        let prog = assemble(
            r"
            li t0, 4
            vsetvli t1, t0
            li a0, 0x1000
            li a1, 0x2000
            vle32.v v1, (a0)
            vle32.v v2, (a1)
            vminu.vv v3, v1, v2
            vmaxu.vv v4, v1, v2
            vmacc.vv v3, v1, v2    # v3 += v1*v2
            li a2, 0x3000
            vse32.v v3, (a2)
            li a3, 0x4000
            vse32.v v4, (a3)
            halt
        ",
        )
        .unwrap();
        m.run(&prog, &mut mem).unwrap();
        assert_eq!(mem.read_u32_slice(0x3000, 4), vec![65, 88, 240, 42]);
        assert_eq!(mem.read_u32_slice(0x4000, 4), vec![12, 10, 15, 20]);
    }

    #[test]
    fn page_fault_restarts_the_load_at_the_faulting_index() {
        // Section V-C: vector loads are restartable via vstart; the
        // result must be identical to a fault-free run, with extra
        // handler cycles and one fault recorded.
        let data: Vec<u32> = (0..100).map(|i| i * 3 + 1).collect();
        let prog = assemble(
            r"
            li t0, 100
            vsetvli t1, t0
            li a0, 0x1000
            vle32.v v1, (a0)
            li a1, 0x9000
            vse32.v v1, (a1)
            halt
        ",
        )
        .unwrap();
        let run = |fault: Option<usize>| {
            let mut m = machine();
            let mut mem = MainMemory::new();
            mem.write_u32_slice(0x1000, &data);
            if let Some(f) = fault {
                m.inject_page_fault(f);
            }
            let r = m.run(&prog, &mut mem).unwrap();
            (mem.read_u32_slice(0x9000, 100), r.cycles, m.faults_taken())
        };
        let (clean, clean_cycles, f0) = run(None);
        let (faulted, faulted_cycles, f1) = run(Some(37));
        assert_eq!(clean, data);
        assert_eq!(faulted, data, "restart must not lose elements");
        assert_eq!(f0, 0);
        assert_eq!(f1, 1);
        assert!(
            faulted_cycles >= clean_cycles + 2000,
            "handler cost missing: {faulted_cycles} vs {clean_cycles}"
        );
    }

    #[test]
    fn fault_outside_the_window_is_deferred() {
        let mut m = machine();
        let mut mem = MainMemory::new();
        mem.write_u32_slice(0x1000, &[1, 2, 3, 4]);
        m.inject_page_fault(90); // beyond vl=4
        let prog = assemble(
            "li t0, 4
vsetvli t1, t0
li a0, 0x1000
vle32.v v1, (a0)
halt",
        )
        .unwrap();
        m.run(&prog, &mut mem).unwrap();
        assert_eq!(m.faults_taken(), 0, "out-of-window fault must not fire");
    }

    #[test]
    fn context_roundtrip_restores_registers_and_csrs() {
        let mut m = machine();
        let mut mem = MainMemory::new();
        mem.write_u32_slice(0x1000, &[9, 8, 7, 6, 5]);
        let prog = assemble(
            "li t0, 5
vsetvli t1, t0, e8, m1
li a0, 0x1000
vle32.v v4, (a0)
halt",
        )
        .unwrap();
        m.run(&prog, &mut mem).unwrap();
        m.inject_page_fault(3);
        let saved = m.save_context();

        // Trash everything: a different tenant runs with other CSRs.
        let fresh = m.fresh_context();
        m.restore_context(&fresh);
        assert_eq!(m.csb().read_vector(4, 5), vec![0; 5]);
        assert_eq!(m.csb().vl(), m.config().max_vl());
        assert!(m.fault_at_element.is_none());

        m.restore_context(&saved);
        assert_eq!(m.csb().read_vector(4, 5), vec![9, 8, 7, 6, 5]);
        assert_eq!((m.csb().vstart(), m.csb().vl()), (0, 5));
        assert_eq!(m.sew, Sew::E8);
        assert_eq!(m.fault_at_element, Some(3));
    }

    #[test]
    fn run_slice_with_context_switches_matches_a_solo_run() {
        let src = r"
            li t0, 64
            vsetvli t1, t0
            li a0, 0x1000
            vle32.v v1, (a0)
            vadd.vx v2, v1, t0
            vmacc.vv v2, v1, v1
            li a1, 0x4000
            vse32.v v2, (a1)
            halt
        ";
        let prog = assemble(src).unwrap();
        let data: Vec<u32> = (0..64u32).map(|i| i.wrapping_mul(13) + 5).collect();

        // Reference: one job alone on a fresh machine.
        let mut solo = machine();
        let mut solo_mem = MainMemory::new();
        solo_mem.write_u32_slice(0x1000, &data);
        solo.run(&prog, &mut solo_mem).unwrap();
        let want = solo_mem.read_u32_slice(0x4000, 64);

        // Sliced: the same job preempted after every vector instruction,
        // with a register-trashing intruder running between slices.
        let mut m = machine();
        let mut mem = MainMemory::new();
        mem.write_u32_slice(0x1000, &data);
        let mut cp = m.new_control_processor();
        let mut ctx = m.fresh_context();
        let mut slices = 0;
        loop {
            m.restore_context(&ctx);
            let outcome = m.run_slice(&mut cp, &prog, &mut mem, 1, u64::MAX).unwrap();
            ctx = m.save_context();
            slices += 1;
            if outcome == SliceOutcome::Halted {
                break;
            }
            // Another tenant scribbles over every register between slices.
            for reg in 0..8 {
                let junk: Vec<u32> = (0..64u32).map(|i| i ^ 0xDEAD_0000 ^ reg).collect();
                m.csb_mut().set_active_window(0, 64);
                m.csb_mut().write_vector(reg as usize, &junk);
            }
        }
        assert!(slices > 3, "budget of 1 must slice per vector instruction");
        assert_eq!(mem.read_u32_slice(0x4000, 64), want);
    }

    #[test]
    fn counters_attribute_deltas_per_slice() {
        let mut m = machine();
        let mut mem = MainMemory::new();
        mem.write_u32_slice(0x1000, &[1, 2, 3, 4]);
        let prog = assemble(
            "li t0, 4
vsetvli t1, t0
li a0, 0x1000
vle32.v v1, (a0)
vadd.vv v2, v1, v1
vse32.v v2, (a0)
halt",
        )
        .unwrap();
        let mut cp = m.new_control_processor();
        let before = m.counters();
        while m.run_slice(&mut cp, &prog, &mut mem, 1, u64::MAX).unwrap() != SliceOutcome::Halted {}
        let delta = m.counters().since(&before);
        assert_eq!(delta.lane_ops, 4, "one vadd over four lanes");
        assert_eq!(delta.hbm_bytes_read, 16);
        assert_eq!(delta.hbm_bytes_written, 16);
        assert!(delta.energy_pj > 0.0);
        assert_eq!(delta.cache_misses, 1, "vadd.vv compiles once");
        // A second identical pass is all cache hits.
        let mid = m.counters();
        let mut cp2 = m.new_control_processor();
        while m.run_slice(&mut cp2, &prog, &mut mem, 1, u64::MAX).unwrap() != SliceOutcome::Halted {
        }
        let delta2 = m.counters().since(&mid);
        assert_eq!(delta2.cache_misses, 0);
        assert_eq!(delta2.cache_hits, 1);
    }

    #[test]
    fn fused_windows_are_bit_identical_and_report_join_savings() {
        let src = r"
            li t0, 100
            vsetvli t1, t0
            li a0, 0x1000
            li a1, 0x2000
            vle32.v v1, (a0)
            vle32.v v2, (a1)
            vadd.vv v3, v1, v2
            vxor.vv v4, v3, v1
            vsub.vv v5, v4, v2
            vand.vv v6, v5, v3
            vmacc.vv v6, v1, v2
            vredsum.vs v7, v6, v1    # barrier: scalar result consumed
            vadd.vv v7, v6, v1
            vor.vv v7, v7, v2
            li a2, 0x3000
            vse32.v v7, (a2)
            halt
        ";
        let prog = assemble(src).unwrap();
        let data_a: Vec<u32> = (0..100u32).map(|i| i.wrapping_mul(2654435761)).collect();
        let data_b: Vec<u32> = (0..100u32).map(|i| i ^ 0x5a5a_1234).collect();
        let run = |fusion_window: usize| {
            let mut config = CapeConfig::tiny(4);
            config.fusion_window = fusion_window;
            let mut m = CapeMachine::new(config);
            let mut mem = MainMemory::new();
            mem.write_u32_slice(0x1000, &data_a);
            mem.write_u32_slice(0x2000, &data_b);
            let report = m.run(&prog, &mut mem).unwrap();
            (mem.read_u32_slice(0x3000, 100), report)
        };
        let (fused_mem, fused) = run(32);
        let (plain_mem, plain) = run(1);

        assert_eq!(fused_mem, plain_mem, "fused results must be bit-identical");
        assert_eq!(fused.cycles, plain.cycles, "modeled timing must not change");
        assert_eq!(fused.lane_ops, plain.lane_ops);
        assert_eq!(fused.vcu_cycles, plain.vcu_cycles);
        assert_eq!(fused.microops, plain.microops, "recorded microop ledger");
        assert!((fused.csb_energy_uj - plain.csb_energy_uj).abs() < 1e-12);

        assert_eq!(plain.fused_windows, 0, "window of 1 disables fusion");
        // The 5 compute ops before vredsum form one window; the 2 after
        // it form another (vse32 flushes).
        assert_eq!(fused.fused_windows, 2);
        assert_eq!(fused.fused_ops, 7);
        assert_eq!(fused.fused_joins_saved, 5);
        // Flush attribution: the vredsum is a scalar-result barrier, the
        // vse32 a VMU one; nothing else interrupted a non-empty window.
        assert_eq!(fused.window_flushes.scalar_result, 1);
        assert_eq!(fused.window_flushes.vmu, 1);
        assert_eq!(fused.window_flushes.total(), 2);
    }

    #[test]
    fn unchanged_vl_vsetvli_is_not_a_fusion_barrier() {
        let mut m = machine(); // max_vl = 128
        let mut mem = MainMemory::new();
        let prog = assemble(
            r"
            li t0, 128
            vsetvli t1, t0, e32,m1
            vmv.v.x v1, t0
            vadd.vv v2, v1, v1
            vsetvli t2, t0, e8,m1    # same vl, vstart 0: no-op marker
            vxor.vv v3, v1, v2
            li t3, 64
            vsetvli t4, t3, e32,m1   # vl shrinks: a real barrier
            vadd.vv v4, v1, v2
            halt
        ",
        )
        .unwrap();
        let report = m.run(&prog, &mut mem).unwrap();
        // The SEW-only vsetvli joined the window: one mixed-SEW window of
        // three ops flushed by the vl change, then a one-op window
        // drained at halt.
        assert_eq!(report.window_flushes.vsetvli, 1);
        assert_eq!(report.window_flushes.drain, 1);
        assert_eq!(report.window_flushes.total(), 2);
        assert_eq!(report.fused_windows, 1);
        assert_eq!(report.fused_ops, 3);
        // Bit-exactness across the no-op vsetvli: the e8 vxor of the two
        // e32 results, lane 0.
        let v1 = 128u32;
        let v2 = v1.wrapping_add(v1);
        assert_eq!(m.csb().read_element(3, 0), (v1 ^ v2) & 0xff);
    }

    #[test]
    fn vsetvli_grants_at_most_max_vl() {
        let mut m = machine();
        let mut mem = MainMemory::new();
        let prog = assemble("li t0, 100000\nvsetvli t1, t0\nli a0, 0\nsd t1, 0(a0)\nhalt").unwrap();
        m.run(&prog, &mut mem).unwrap();
        assert_eq!(mem.read_u64(0), 128);
    }
}

//! System configurations (Table III of the paper).

use cape_csb::CsbGeometry;
use cape_mem::HbmConfig;
use serde::{Deserialize, Serialize};

/// A CAPE system configuration.
///
/// The paper evaluates two design points sized to match one and two
/// out-of-order core tiles respectively (slightly under 9 mm² at 7 nm per
/// tile): [`CapeConfig::cape32k`] (1,024 chains = 32,768 lanes) and
/// [`CapeConfig::cape131k`] (4,096 chains = 131,072 lanes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapeConfig {
    /// Configuration name for reports.
    pub name: &'static str,
    /// Number of CSB chains.
    pub chains: usize,
    /// CAPE clock in GHz. The critical path is the 237 ps read microop
    /// (4.22 GHz), derated 65% for clock skew and uncertainty → 2.7 GHz.
    pub freq_ghz: f64,
    /// Main-memory latency in CP cycles (HBM ~100 ns at 2.7 GHz).
    pub mem_latency_cycles: u64,
    /// The HBM main-memory system (8 channels, 16 GB/s each).
    pub hbm: HbmConfig,
    /// Instruction budget guard for program runs.
    pub max_instructions: u64,
    /// Entry budget of the VCU's compiled-program cache (per-op entries
    /// and fused windows each get this many slots). Sized so
    /// scalar-specialized sweeps — e.g. histogram's 256-bucket `vmseq.vx`
    /// inner loop, one program per bucket value — fit without LRU thrash.
    pub program_cache_capacity: usize,
    /// Maximum number of consecutive vector instructions fused into one
    /// CSB broadcast window. `1` (or `0`) disables fusion and restores
    /// the one-broadcast-per-instruction path; barriers (scalar reads,
    /// loads/stores, effective `vsetvli` changes, preemption) flush
    /// earlier regardless.
    pub fusion_window: usize,
    /// Whether the window compiler may reschedule independent buffered
    /// ops over their RAW/WAR/WAW dependence graph before fusing (the v2
    /// pipeline). `false` restores strict issue-order concatenation.
    /// Either way the committed CSB state, recorded stats, modeled
    /// cycles/energy and fault replay are bit-identical — only the host
    /// broadcast plan changes.
    pub fusion_reorder: bool,
}

impl CapeConfig {
    /// The CAPE32k design point: area-equivalent to one baseline core.
    pub fn cape32k() -> Self {
        Self {
            name: "CAPE32k",
            chains: 1024,
            freq_ghz: 2.7,
            mem_latency_cycles: 270,
            hbm: HbmConfig::default(),
            max_instructions: 500_000_000,
            program_cache_capacity: 1024,
            fusion_window: 32,
            fusion_reorder: true,
        }
    }

    /// The CAPE131k design point: area-equivalent to two baseline cores.
    pub fn cape131k() -> Self {
        Self {
            name: "CAPE131k",
            chains: 4096,
            ..Self::cape32k()
        }
    }

    /// A small configuration for tests and examples (`chains` chains,
    /// `chains * 32` lanes), with the full timing model intact.
    pub fn tiny(chains: usize) -> Self {
        Self {
            name: "CAPE-tiny",
            chains,
            ..Self::cape32k()
        }
    }

    /// The CSB geometry of this configuration.
    pub fn geometry(&self) -> CsbGeometry {
        CsbGeometry::new(self.chains)
    }

    /// Maximum vector length in 32-bit elements.
    pub fn max_vl(&self) -> usize {
        self.geometry().max_vl()
    }

    /// CSB storage capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.geometry().capacity_bytes()
    }
}

/// When a fleet scheduler stops trusting a machine.
///
/// A health monitor samples each machine's fault-layer counters
/// ([`FaultStats`](cape_csb::FaultStats)) between scheduling steps and
/// compares the *deltas* — new detections, new retries — plus the
/// absolute spare-block inventory against these thresholds to classify
/// the machine Healthy → Degraded → Quarantined. The defaults are sized
/// for the storm rates of `FaultConfig::seeded`: a handful of remapped
/// transients is normal wear, a burst of strikes or a near-empty spare
/// pool is not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthThresholds {
    /// Fault detections (parity + golden + scrub) within one health
    /// window at or above this mark the machine Degraded — it still
    /// computes correctly (checkpointed retry heals the jobs) but it is
    /// burning retries and spares, so new work should route elsewhere.
    pub degraded_strikes: u64,
    /// Checkpointed slice re-executions within one health window at or
    /// above this mark the machine Degraded.
    pub degraded_retries: u64,
    /// A spare-block inventory at or below this (with at least one
    /// quarantine already taken) marks the machine Degraded: the next
    /// hard fault may be unmappable.
    pub degraded_spares_free: usize,
    /// Faulty blocks still pending after quarantine-and-remap (spares
    /// exhausted) at or above this mark the machine Quarantined: it can
    /// no longer guarantee bit-exact results, so it must stop taking
    /// jobs and its queue must migrate.
    pub quarantine_pending_faults: usize,
    /// Consecutive clean health windows a *repaired* machine must post on
    /// Probation before it is re-admitted to Healthy and eligible for new
    /// work. Any dirty window during Probation sends it back to
    /// Quarantined for good (one repair attempt per machine).
    pub probation_clean_windows: u64,
}

impl Default for HealthThresholds {
    fn default() -> Self {
        Self {
            degraded_strikes: 6,
            degraded_retries: 4,
            degraded_spares_free: 1,
            quarantine_pending_faults: 1,
            probation_clean_windows: 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_defaults_are_ordered() {
        let h = HealthThresholds::default();
        assert!(h.degraded_strikes > 0 && h.degraded_retries > 0);
        assert!(h.quarantine_pending_faults > 0);
    }

    #[test]
    fn paper_design_points() {
        let small = CapeConfig::cape32k();
        assert_eq!(small.max_vl(), 32_768);
        assert_eq!(small.capacity_bytes(), 4 << 20);
        let big = CapeConfig::cape131k();
        assert_eq!(big.max_vl(), 131_072);
        assert_eq!(big.freq_ghz, 2.7);
    }

    #[test]
    fn tiny_keeps_model_parameters() {
        let t = CapeConfig::tiny(2);
        assert_eq!(t.max_vl(), 64);
        assert_eq!(t.freq_ghz, CapeConfig::cape32k().freq_ghz);
    }
}

//! Criterion benchmarks of whole vector instructions through the
//! sequencer — the per-instruction counterpart of Table I.

use cape_csb::{Csb, CsbGeometry};
use cape_ucode::{Sequencer, VectorOp};
use criterion::{criterion_group, criterion_main, Criterion};

fn prepared() -> Csb {
    let mut csb = Csb::new(CsbGeometry::new(64));
    let data: Vec<u32> = (0..2048u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
    csb.write_vector(1, &data);
    csb.write_vector(2, &data);
    csb
}

fn bench_instructions(c: &mut Criterion) {
    let cases = [
        (
            "vadd_vv",
            VectorOp::Add {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
        ),
        (
            "vmul_vv",
            VectorOp::Mul {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
        ),
        (
            "vand_vv",
            VectorOp::And {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
        ),
        (
            "vmseq_vx",
            VectorOp::MseqScalar {
                vd: 3,
                vs1: 1,
                rs: 42,
            },
        ),
        (
            "vmslt_vv",
            VectorOp::Mslt {
                vd: 3,
                vs1: 1,
                vs2: 2,
                signed: true,
            },
        ),
        ("vredsum", VectorOp::RedSum { vd: 3, vs: 1 }),
        (
            "vmerge",
            VectorOp::Merge {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
        ),
    ];
    let mut g = c.benchmark_group("instruction");
    for (name, op) in cases {
        let mut csb = prepared();
        g.bench_function(name, |b| b.iter(|| Sequencer::new(&mut csb).execute(&op)));
    }
    g.finish();
}

criterion_group!(benches, bench_instructions);
criterion_main!(benches);

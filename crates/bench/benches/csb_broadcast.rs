//! Per-microop vs program-granularity broadcast throughput.
//!
//! The PR 2 tentpole: compiling a vector instruction once and fanning the
//! whole microop program out over the persistent worker pool should beat
//! re-broadcasting (and re-deriving) each microop individually. This
//! bench measures whole `vadd.vv` executions through both sequencer paths
//! at 1k/2k/4k chains, plus the bulk transposed vector I/O against the
//! per-element path it replaced.
//!
//! The PR 4 tentpole adds the `block_kernel` group: whole instructions
//! through the block-SoA kernels (16 chains per block, auto-vectorized
//! contiguous-slice loops) for the three shapes the results file tracks —
//! `vadd.vv` (bit-serial adder), `vmslt.vv` (compare/flag walk) and
//! `vredsum.vs` (reduction-tree popcounts) — at 1k and 4k chains.

use cape_csb::{Csb, CsbGeometry, FaultConfig};
use cape_ucode::{CompiledOp, Sequencer, VectorOp};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const VADD: VectorOp = VectorOp::Add {
    vd: 3,
    vs1: 1,
    vs2: 2,
};

const VMSLT: VectorOp = VectorOp::Mslt {
    vd: 3,
    vs1: 1,
    vs2: 2,
    signed: true,
};

const VREDSUM: VectorOp = VectorOp::RedSum { vd: 3, vs: 1 };

fn csb(chains: usize) -> Csb {
    let mut csb = Csb::new(CsbGeometry::new(chains));
    let vals: Vec<u32> = (0..csb.max_vl())
        .map(|e| (e as u32).wrapping_mul(2_654_435_761))
        .collect();
    csb.write_vector(1, &vals);
    csb.write_vector(2, &vals);
    csb.set_active_window(0, csb.max_vl());
    csb
}

fn bench_vadd_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("vadd");
    g.sample_size(10);
    for chains in [1024usize, 2048, 4096] {
        let compiled = CompiledOp::compile(&VADD, 32);
        let mut per_op = csb(chains);
        g.bench_with_input(BenchmarkId::new("per_microop", chains), &chains, |b, _| {
            b.iter(|| Sequencer::new(&mut per_op).run_per_op(&compiled))
        });
        let mut program = csb(chains);
        g.bench_with_input(BenchmarkId::new("program", chains), &chains, |b, _| {
            b.iter(|| Sequencer::new(&mut program).run_program(&compiled))
        });
    }
    g.finish();
}

fn bench_masked_window(c: &mut Criterion) {
    // Partially-masked windows must still engage the pool (the old
    // threaded-path guard fell back to serial whenever any chain idled).
    let mut g = c.benchmark_group("vadd_masked");
    g.sample_size(10);
    let chains = 4096usize;
    let compiled = CompiledOp::compile(&VADD, 32);
    let mut m = csb(chains);
    let vl = m.max_vl() - 5000;
    m.set_active_window(3, vl);
    g.bench_with_input(BenchmarkId::new("program", chains), &chains, |b, _| {
        b.iter(|| Sequencer::new(&mut m).run_program(&compiled))
    });
    g.finish();
}

fn bench_vector_io(c: &mut Criterion) {
    let mut g = c.benchmark_group("vector_io");
    g.sample_size(10);
    for chains in [1024usize, 4096] {
        let mut m = csb(chains);
        let n = m.max_vl();
        let vals: Vec<u32> = (0..n).map(|e| e as u32 ^ 0xA5A5_5A5A).collect();
        g.bench_with_input(BenchmarkId::new("bulk_write", chains), &chains, |b, _| {
            b.iter(|| m.write_vector(4, &vals))
        });
        g.bench_with_input(BenchmarkId::new("bulk_read", chains), &chains, |b, _| {
            b.iter(|| m.read_vector(4, n))
        });
        g.bench_with_input(
            BenchmarkId::new("per_element_write", chains),
            &chains,
            |b, _| {
                b.iter(|| {
                    for (e, &v) in vals.iter().enumerate() {
                        m.write_element(5, e, v);
                    }
                })
            },
        );
    }
    g.finish();
}

fn bench_block_kernels(c: &mut Criterion) {
    // Whole instructions through the block-SoA kernel path (the program
    // path now runs 16-chain blocks per microop). Recorded per PR in
    // results/bench_pr4.json as host ns for vadd/vmslt/redsum.
    let mut g = c.benchmark_group("block_kernel");
    g.sample_size(10);
    for chains in [1024usize, 4096] {
        for (name, op) in [("vadd", VADD), ("vmslt", VMSLT), ("redsum", VREDSUM)] {
            let compiled = CompiledOp::compile(&op, 32);
            let mut m = csb(chains);
            g.bench_with_input(BenchmarkId::new(name, chains), &chains, |b, _| {
                b.iter(|| Sequencer::new(&mut m).run_program(&compiled))
            });
        }
    }
    g.finish();
}

fn bench_fault_overhead(c: &mut Criterion) {
    // PR 7: clean vs quiescent-armed fault mode over the same whole
    // instruction. With incremental in-kernel parity the armed path pays
    // one fused XOR-fold per written row plus an O(touched blocks)
    // syndrome drain at broadcast boundaries, so the two bars should sit
    // within a few percent of each other (the old full-rescan model put
    // the armed bar at ~13x). Recorded in results/bench_pr7.json.
    let mut g = c.benchmark_group("fault_overhead");
    g.sample_size(10);
    let chains = 4096usize;
    let compiled = CompiledOp::compile(&VADD, 32);
    let mut clean = csb(chains);
    g.bench_with_input(BenchmarkId::new("vadd_clean", chains), &chains, |b, _| {
        b.iter(|| Sequencer::new(&mut clean).run_program(&compiled))
    });
    let mut armed = csb(chains);
    armed.enable_fault_injection(FaultConfig::quiescent(2));
    g.bench_with_input(
        BenchmarkId::new("vadd_quiescent", chains),
        &chains,
        |b, _| b.iter(|| Sequencer::new(&mut armed).run_program(&compiled)),
    );
    g.finish();
}

criterion_group!(
    benches,
    bench_vadd_paths,
    bench_masked_window,
    bench_vector_io,
    bench_block_kernels,
    bench_fault_overhead
);
criterion_main!(benches);

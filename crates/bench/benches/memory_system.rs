//! Criterion benchmarks of the memory substrate: cache-simulator
//! throughput and the HBM/main-memory models.

use cape_mem::{CacheHierarchy, Hbm, MainMemory};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_cache_hierarchy(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.bench_function("stream_64k_accesses", |b| {
        let mut h = CacheHierarchy::baseline_three_level(300);
        b.iter(|| {
            let mut total = 0u64;
            for i in 0..65_536u64 {
                total += h.access(i * 64, false);
            }
            total
        })
    });
    g.bench_function("hot_set_accesses", |b| {
        let mut h = CacheHierarchy::baseline_three_level(300);
        b.iter(|| {
            let mut total = 0u64;
            for i in 0..65_536u64 {
                total += h.access((i % 256) * 64, i % 7 == 0);
            }
            total
        })
    });
    g.finish();
}

fn bench_main_memory(c: &mut Criterion) {
    let mut g = c.benchmark_group("main_memory");
    g.bench_function("u32_slice_roundtrip_16k", |b| {
        let mut m = MainMemory::new();
        let data: Vec<u32> = (0..16_384).collect();
        b.iter(|| {
            m.write_u32_slice(0x10_000, &data);
            m.read_u32_slice(0x10_000, data.len())
        })
    });
    g.finish();
}

fn bench_hbm_model(c: &mut Criterion) {
    let hbm = Hbm::default();
    c.bench_function("hbm_transfer_model", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for bytes in [512u64, 4096, 131_072, 4 << 20] {
                acc += hbm.transfer_cycles(bytes, 2.7);
            }
            acc
        })
    });
}

criterion_group!(
    benches,
    bench_cache_hierarchy,
    bench_main_memory,
    bench_hbm_model
);
criterion_main!(benches);

//! Criterion benchmarks of the CSB microoperation primitives — the
//! emulator-throughput counterpart of Table II.

use cape_csb::{ColSel, Csb, CsbGeometry, MicroOp, Probe, TagDest, TagMode, WriteSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn csb(chains: usize) -> Csb {
    let mut csb = Csb::new(CsbGeometry::new(chains));
    for e in 0..csb.max_vl().min(4096) {
        csb.write_element(1, e, e as u32);
    }
    csb
}

fn bench_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("search");
    for chains in [16usize, 256, 1024] {
        let mut m = csb(chains);
        let op = MicroOp::Search {
            probes: vec![Probe::row(0, 1, true)],
            gates: vec![],
            dest: TagDest::Tags,
            mode: TagMode::Set,
        };
        g.bench_with_input(BenchmarkId::new("bit_serial", chains), &chains, |b, _| {
            b.iter(|| m.execute(&op))
        });
        let bp = MicroOp::Search {
            probes: (0..32).map(|i| Probe::row(i, 1, true)).collect(),
            gates: vec![],
            dest: TagDest::Tags,
            mode: TagMode::Set,
        };
        g.bench_with_input(BenchmarkId::new("bit_parallel", chains), &chains, |b, _| {
            b.iter(|| m.execute(&bp))
        });
    }
    g.finish();
}

fn bench_update_and_reduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("update_reduce");
    for chains in [16usize, 1024] {
        let mut m = csb(chains);
        let upd = MicroOp::Update {
            writes: vec![
                WriteSpec {
                    subarray: 3,
                    row: 2,
                    value: true,
                    cols: ColSel::Tags(3),
                },
                WriteSpec {
                    subarray: 4,
                    row: 32,
                    value: true,
                    cols: ColSel::Tags(3),
                },
            ],
        };
        g.bench_with_input(BenchmarkId::new("update_prop", chains), &chains, |b, _| {
            b.iter(|| m.execute(&upd))
        });
        let red = MicroOp::ReduceTags { subarray: 0 };
        g.bench_with_input(BenchmarkId::new("reduce", chains), &chains, |b, _| {
            b.iter(|| m.execute(&red))
        });
    }
    g.finish();
}

fn bench_element_transfer(c: &mut Criterion) {
    let mut m = csb(64);
    c.bench_function("element_deposit_2048", |b| {
        b.iter(|| {
            for e in 0..2048 {
                m.write_element(2, e, e as u32);
            }
        })
    });
}

criterion_group!(
    benches,
    bench_search,
    bench_update_and_reduce,
    bench_element_transfer
);
criterion_main!(benches);

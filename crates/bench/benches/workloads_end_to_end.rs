//! End-to-end Criterion benchmarks: whole workload programs on a small
//! CAPE machine (program build + run + digest).

use cape_core::CapeConfig;
use cape_workloads::{micro, phoenix, run_cape};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_micro(c: &mut Criterion) {
    let config = CapeConfig::tiny(8);
    let mut g = c.benchmark_group("micro_e2e");
    g.sample_size(10);
    for w in micro::suite(2000) {
        g.bench_function(w.name(), |b| b.iter(|| run_cape(w.as_ref(), &config)));
    }
    g.finish();
}

fn bench_phoenix(c: &mut Criterion) {
    let config = CapeConfig::tiny(8);
    let mut g = c.benchmark_group("phoenix_e2e");
    g.sample_size(10);
    for w in phoenix::tiny_suite() {
        g.bench_function(w.name(), |b| b.iter(|| run_cape(w.as_ref(), &config)));
    }
    g.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut g = c.benchmark_group("baseline_kernels");
    g.sample_size(10);
    for w in phoenix::tiny_suite() {
        g.bench_function(w.name(), |b| b.iter(|| w.run_baseline()));
    }
    g.finish();
}

criterion_group!(benches, bench_micro, bench_phoenix, bench_baselines);
criterion_main!(benches);

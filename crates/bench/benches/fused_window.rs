//! Host-side cost of the fused-window broadcast path versus per-op
//! dispatch, on the 4k-chain Phoenix string-match scan (the
//! `fusion_smoke` gate kernel): text CSB-resident, every sweep exactly
//! one window of short-microprogram ops, scalars loop-invariant so the
//! fused-window cache replays each sweep's super-program.
//!
//! `fused` runs the default machine (`fusion_window = 32`, one pool
//! broadcast + one join per window); `per_op` pins `fusion_window = 1`
//! (the exact legacy path: one broadcast + join per vector
//! instruction). Modeled cycles and outputs are bit-identical — the
//! delta is pure host wall-clock from join elimination, cross-op
//! peepholes and single-pass block sweeps.

use cape_bench::fusion;
use cape_core::CapeMachine;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const ITERS: usize = 20;

fn run(fusion_window: usize, mixed: bool) -> u64 {
    let mut config = fusion::config();
    config.fusion_window = fusion_window;
    let max_vl = config.max_vl();
    let program = if mixed {
        fusion::phoenix_loop_mixed(max_vl, ITERS)
    } else {
        fusion::phoenix_loop(max_vl, ITERS)
    };
    let mut machine = CapeMachine::new(config);
    let mut mem = fusion::input(max_vl);
    let report = machine.run(&program, &mut mem).expect("runs");
    report.cycles ^ fusion::digest(&mem, max_vl)
}

fn bench_fused_window(c: &mut Criterion) {
    let mut g = c.benchmark_group("fused_window");
    g.sample_size(10);
    let vl = fusion::config().max_vl();

    g.bench_with_input(BenchmarkId::new("fused", vl), &vl, |b, _| {
        b.iter(|| run(32, false))
    });
    g.bench_with_input(BenchmarkId::new("per_op", vl), &vl, |b, _| {
        b.iter(|| run(1, false))
    });
    g.bench_with_input(BenchmarkId::new("fused_mixed_sew", vl), &vl, |b, _| {
        b.iter(|| run(32, true))
    });
    g.bench_with_input(BenchmarkId::new("per_op_mixed_sew", vl), &vl, |b, _| {
        b.iter(|| run(1, true))
    });

    g.finish();
}

criterion_group!(benches, bench_fused_window);
criterion_main!(benches);

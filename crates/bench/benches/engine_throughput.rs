//! Multi-tenant serving throughput through `cape-engine`.
//!
//! Measures draining a mixed Phoenix job queue (8 kernels × 4 tenants)
//! through the batch scheduler, against the same jobs run back-to-back
//! on fresh machines (the no-engine baseline a deployment would
//! otherwise use), plus the effect of fingerprint batching versus pure
//! FIFO service (`max_batch = 1`).
//!
//! `take_batch` note: batch extraction used to split the queue by
//! draining it into a freshly allocated `kept` deque and reassigning
//! the whole pending queue on every batch (an O(queue) allocation +
//! move per batch). It is now a single pass that rotates non-batch
//! jobs in place through the same `VecDeque` — no reallocation, same
//! admission order. Before/after medians on this bench (same host,
//! back-to-back runs): `serve_fifo` 63.9 ms → 48.7/50.1 ms (the
//! batch-heaviest shape, 32 splits per drain), `serve_batched`
//! 90.6 ms → 73.1/76.2 ms — though `solo_sequential`, which never
//! touches the engine, wandered 73.7–90.6 ms across the same runs, so
//! read the deltas as directional; the structural win is the allocator
//! traffic taken off the serve path.

use cape_core::CapeConfig;
use cape_engine::{Engine, EngineConfig, JobSpec};
use cape_mem::MainMemory;
use cape_workloads::{phoenix, run_cape, Workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const CHAINS: usize = 4;
const INSTANCES: usize = 4;

fn job(w: &dyn Workload, instance: usize) -> JobSpec {
    let mut mem = MainMemory::new();
    let program = w.cape_setup(&mut mem);
    JobSpec::new(format!("{}#{instance}", w.name()), program, mem)
}

fn drain_mix(max_batch: usize) -> cape_engine::EngineReport {
    let suite = phoenix::tiny_suite();
    let mut engine = Engine::new(EngineConfig {
        queue_capacity: suite.len() * INSTANCES,
        slice_vectors: 16,
        max_batch,
        machine: CapeConfig::tiny(CHAINS),
        fault: None,
    });
    for instance in 0..INSTANCES {
        for w in &suite {
            engine
                .submit(job(w.as_ref(), instance))
                .expect("queue sized for the mix");
        }
    }
    engine.run()
}

fn bench_engine_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    let n_jobs = phoenix::tiny_suite().len() * INSTANCES;

    g.bench_with_input(
        BenchmarkId::new("serve_batched", n_jobs),
        &n_jobs,
        |b, _| b.iter(|| drain_mix(INSTANCES)),
    );

    g.bench_with_input(BenchmarkId::new("serve_fifo", n_jobs), &n_jobs, |b, _| {
        b.iter(|| drain_mix(1))
    });

    // Baseline: the same 32 jobs each on a fresh machine, sequentially —
    // no shared program cache, no batching, no context switches.
    g.bench_with_input(
        BenchmarkId::new("solo_sequential", n_jobs),
        &n_jobs,
        |b, _| {
            b.iter(|| {
                let config = CapeConfig::tiny(CHAINS);
                let suite = phoenix::tiny_suite();
                let mut digest = 0u64;
                for _ in 0..INSTANCES {
                    for w in &suite {
                        digest ^= run_cape(w.as_ref(), &config).digest;
                    }
                }
                digest
            })
        },
    );

    g.finish();
}

criterion_group!(benches, bench_engine_throughput);
criterion_main!(benches);

//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. the replica vector load (`vlrw`) vs refetching the replicated
//!    chunk at full vector width (memory-traffic ablation, Section V-G);
//! 2. `vredsum` vs an equivalent chain of element-wise additions (the
//!    "8x faster than a vector addition" trade-off of Section V-G);
//! 3. global command distribution growth vs chain count (the
//!    text-application scaling ceiling of Section VI-E);
//! 4. element interleaving across chains vs a blocked layout (VMU
//!    sub-request consumption, Section V-E).

use cape_bench::{quick_scale, section, Measurement};
use cape_core::CapeConfig;
use cape_csb::{Csb, CsbGeometry};
use cape_ucode::metrics::paper_row;
use cape_ucode::VectorOpKind;
use cape_ucode::{Sequencer, VectorOp};
use cape_vcu::Vcu;
use cape_workloads::phoenix::{Matmul, WordCount};

fn main() {
    let quick = quick_scale();

    section("Ablation 1 — replica vector load (vlrw) on matmul");
    let n = if quick { 16 } else { 64 };
    let w = Matmul { n };
    let m = Measurement::take(&w, &CapeConfig::cape32k());
    let read = m.cape.report.hbm_bytes_read;
    // Without vlrw, every Bt-row replication becomes a full-vl fetch:
    // each of the n j-iterations per block would stream rows*n elements
    // instead of n.
    let blocks = ((n * n) as u64).div_ceil(CapeConfig::cape32k().max_vl() as u64);
    let rows_per_block = (n as u64).min(CapeConfig::cape32k().max_vl() as u64 / n as u64);
    let without = read + (n as u64) * blocks * (rows_per_block - 1) * (n as u64) * 4;
    println!("matmul n={n}: HBM reads with vlrw  = {read} B");
    println!("              HBM reads without    = {without} B (refetching replicas)");
    println!(
        "              traffic saved        = {:.1}x",
        without as f64 / read as f64
    );

    section("Ablation 2 — vredsum vs element-wise additions");
    let add = paper_row(VectorOpKind::Add)
        .expect("table row")
        .total_cycles
        .eval(32);
    let red = paper_row(VectorOpKind::RedSum)
        .expect("table row")
        .total_cycles
        .eval(32);
    let tree = cape_csb::ReductionTree::new(1024);
    println!(
        "vadd.vv: {add} cycles; vredsum.vs: {} cycles (incl. {}-stage tree)",
        red + u64::from(tree.stages()),
        tree.stages()
    );
    println!(
        "redsum advantage: {:.1}x (the paper quotes ~8x, Section V-G)",
        add as f64 / (red + u64::from(tree.stages())) as f64
    );

    section("Ablation 3 — command distribution vs chain count (wrdcnt)");
    println!(
        "{:<10} {:>10} {:>14} {:>12}",
        "chains", "lanes", "cmd-dist cyc", "speedup/1c"
    );
    println!("{}", "-".repeat(50));
    let wc = if quick {
        WordCount {
            n: 20_000,
            vocab: 128,
            top: 12,
        }
    } else {
        WordCount {
            n: 120_000,
            vocab: 512,
            top: 24,
        }
    };
    for chains in [256usize, 1024, 4096] {
        let mut cfg = CapeConfig::cape32k();
        cfg.chains = chains;
        let vcu = Vcu::new(chains);
        let m = Measurement::take(&wc, &cfg);
        println!(
            "{:<10} {:>10} {:>14} {:>11.1}x",
            chains,
            chains * 32,
            vcu.cmd_dist_cycles(),
            m.speedup_1core()
        );
    }
    println!("Text-style applications stop scaling (and can regress) as the");
    println!("distribution tree deepens while their serial fraction persists.");

    section("Ablation 4 — narrow element types (Section V-A)");
    println!("{:<12} {:>10} {:>10} {:>10}", "instr", "e8", "e16", "e32");
    println!("{}", "-".repeat(46));
    for (name, op) in [
        (
            "vadd.vv",
            VectorOp::Add {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
        ),
        (
            "vmul.vv",
            VectorOp::Mul {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
        ),
        (
            "vmseq.vx",
            VectorOp::MseqScalar {
                vd: 3,
                vs1: 1,
                rs: 42,
            },
        ),
        ("vredsum.vs", VectorOp::RedSum { vd: 3, vs: 1 }),
    ] {
        let uops = |w: usize| {
            let mut csb = Csb::new(CsbGeometry::new(1));
            csb.write_vector(1, &[1, 2, 3]);
            csb.write_vector(2, &[4, 5, 6]);
            Sequencer::with_width(&mut csb, w)
                .execute(&op)
                .stats
                .total()
        };
        println!(
            "{:<12} {:>10} {:>10} {:>10}",
            name,
            uops(8),
            uops(16),
            uops(32)
        );
    }
    println!("Bit-serial cost is linear (quadratic for vmul) in the element");
    println!("width, so e8 data gets a ~4x (vmul: ~16x) microop discount.");

    section("Ablation 5 — element interleaving vs blocked layout");
    let cfg = CapeConfig::cape32k();
    let packet_elems = u64::from(cfg.hbm.packet_bytes) / 4;
    println!(
        "A {}B sub-request carries {} elements.",
        cfg.hbm.packet_bytes, packet_elems
    );
    println!(
        "* interleaved (CAPE): consecutive elements land in {} distinct",
        packet_elems
    );
    println!("  chains -> one CSB cycle per sub-request (Section V-E).");
    let lanes_per_chain = 32u64;
    let chains_touched = packet_elems.div_ceil(lanes_per_chain);
    println!(
        "* blocked: the same {} elements hit only {} chains, which must",
        packet_elems, chains_touched
    );
    println!(
        "  each absorb {} element writes serially -> {}x slower intake.",
        packet_elems / chains_touched,
        packet_elems / chains_touched
    );
}

//! Regenerates Table II: per-microoperation delay and dynamic energy of
//! one CAPE chain, plus this emulator's observed bit-serial/bit-parallel
//! microop mix for a representative instruction sample.

use cape_bench::section;
use cape_core::{TABLE2_BP, TABLE2_BS, TABLE2_DELAYS};
use cape_csb::{Csb, CsbGeometry};
use cape_ucode::{Sequencer, VectorOp};

fn main() {
    section("Table II — microoperation delay and energy (one chain)");
    let d = TABLE2_DELAYS;
    let bs = TABLE2_BS;
    let bp = TABLE2_BP;
    println!(
        "{:<22} {:>10} {:>12} {:>12}",
        "microop", "delay (ps)", "BS E (pJ)", "BP E (pJ)"
    );
    println!("{}", "-".repeat(60));
    println!(
        "{:<22} {:>10} {:>12} {:>12.1}",
        "read", d.read_ps, "-", bp.read_pj
    );
    println!(
        "{:<22} {:>10} {:>12} {:>12.1}",
        "write", d.write_ps, "-", bp.write_pj
    );
    println!(
        "{:<22} {:>10} {:>12.1} {:>12.1}",
        "search (4 rows)", d.search_ps, bs.search_pj, bp.search_pj
    );
    println!(
        "{:<22} {:>10} {:>12.1} {:>12.1}",
        "update w/o prop", d.update_ps, bs.update_pj, bp.update_pj
    );
    println!(
        "{:<22} {:>10} {:>12.1} {:>12}",
        "update w/ prop", d.update_prop_ps, bs.update_prop_pj, "-"
    );
    println!(
        "{:<22} {:>10} {:>12} {:>12.1}",
        "reduce", d.reduce_ps, "-", bp.reduce_pj
    );
    println!();
    println!(
        "cycle time: read is the critical path at {} ps (4.22 GHz), derated",
        d.read_ps
    );
    println!("65% for skew/uncertainty -> 2.7 GHz CAPE clock (Section VI-B).");

    section("Observed microop mix (emulator, one instruction each)");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "instr", "srch-bs", "srch-bp", "upd-bs", "upd-bp", "upd-pr", "reduce"
    );
    println!("{}", "-".repeat(66));
    let samples = [
        (
            "vadd.vv",
            VectorOp::Add {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
        ),
        (
            "vmul.vv",
            VectorOp::Mul {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
        ),
        (
            "vand.vv",
            VectorOp::And {
                vd: 3,
                vs1: 1,
                vs2: 2,
            },
        ),
        (
            "vmseq.vx",
            VectorOp::MseqScalar {
                vd: 3,
                vs1: 1,
                rs: 7,
            },
        ),
        ("vredsum.vs", VectorOp::RedSum { vd: 3, vs: 1 }),
    ];
    for (name, op) in samples {
        let mut csb = Csb::new(CsbGeometry::new(1));
        let a: Vec<u32> = (0..32).collect();
        csb.write_vector(1, &a);
        csb.write_vector(2, &a);
        let s = Sequencer::new(&mut csb).execute(&op).stats;
        println!(
            "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            name,
            s.searches_bs,
            s.searches_bp,
            s.updates_bs,
            s.updates_bp,
            s.updates_prop,
            s.reduces
        );
    }
    println!();
    println!("Bit-serial arithmetic touches 1-2 subarrays per microop (operand");
    println!("locality from bit-slicing); logic/compare instructions are the");
    println!("bit-parallel flavour, activating all 32 subarrays at once.");
}

//! Regenerates Fig. 11: Phoenix application speedups — CAPE32k against
//! one area-equivalent out-of-order core, CAPE131k against two, with a
//! three-core system for reference.

use cape_bench::{geomean, quick_scale, section, Measurement};
use cape_core::CapeConfig;
use cape_workloads::phoenix;

fn main() {
    let suite = if quick_scale() {
        phoenix::tiny_suite()
    } else {
        phoenix::suite()
    };
    section("Fig. 11 — Phoenix speedups (CAPE32k vs 1 core, CAPE131k vs 2 cores)");

    let c32 = CapeConfig::cape32k();
    let c131 = CapeConfig::cape131k();
    println!(
        "{:<10} {:>12} {:>12} {:>12} | {:>9} {:>9} {:>9} {:>8}",
        "app", "1-core ms", "cape32k ms", "cape131k ms", "s32k/1c", "s131k/2c", "3c/1c", "uc-hit"
    );
    println!("{}", "-".repeat(93));
    let mut s32 = Vec::new();
    let mut s131 = Vec::new();
    for w in &suite {
        let m32 = Measurement::take(w.as_ref(), &c32);
        let m131 = Measurement::take(w.as_ref(), &c131);
        let sp32 = m32.speedup_1core();
        let sp131 = m131.speedup_ncore(2);
        let three_core = m32.baseline.report.time_ms()
            / cape_baseline::MulticoreModel::new(m32.baseline.parallel_fraction)
                .time_ms(&m32.baseline.report, 3);
        s32.push(sp32);
        s131.push(sp131);
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>12.3} | {:>8.1}x {:>8.1}x {:>8.2}x {:>7.1}%",
            m32.name,
            m32.baseline.report.time_ms(),
            m32.cape.report.time_ms(),
            m131.cape.report.time_ms(),
            sp32,
            sp131,
            three_core,
            m32.cape.report.program_cache_hit_rate() * 100.0,
        );
    }
    println!("{}", "-".repeat(93));
    println!(
        "geomean: CAPE32k {:.1}x over 1 core | CAPE131k {:.1}x over 2 cores",
        geomean(&s32),
        geomean(&s131)
    );
    println!();
    println!("Shape checks against the paper (Section VI-E):");
    println!("* kmeans: dataset fits CAPE131k's CSB but not CAPE32k's, so its");
    println!("  speedup jumps dramatically at 131k (the 426x outlier effect);");
    println!("* wrdcnt/revidx/strmatch: the sequential traversal and serialized");
    println!("  match post-processing cap scaling — their 131k speedups do NOT");
    println!("  improve over 32k (and can regress with the longer command");
    println!("  distribution);");
    println!("* pca: inter-iteration dependences block the replica-load trick,");
    println!("  so it stays flat from 32k to 131k.");
}

//! Fault-storm stress gate: drives 64 concurrent Phoenix jobs through
//! `cape-engine` under seeded random fault injection and verifies the
//! self-healing contract — every job either completes with a digest
//! bit-identical to a clean run or fails with a typed
//! [`JobError`](cape_engine::JobError), no
//! silent corruption ever escapes, and every injected fault is
//! attributed to a detection event. Also measures the overhead of the
//! detection machinery (quiescent mode: parity scrub + checkpointing,
//! zero injections) and of riding out the storm itself, relative to the
//! fault-free fast path. Exits non-zero on any violation, so CI runs it
//! as a `fault-storm` gate in `--release`.

use cape_bench::section;
use cape_core::{CapeConfig, FaultConfig};
use cape_engine::{Engine, EngineConfig, EngineReport, FaultPolicy, JobId, JobSpec};
use cape_mem::MainMemory;
use cape_workloads::{phoenix, run_cape, Workload};

const CHAINS: usize = 4;
const INSTANCES_PER_KERNEL: usize = 8;
const STORM_SEED: u64 = 0x5707_11FA_17CA_9E06;

fn job(w: &dyn Workload, instance: usize) -> JobSpec {
    let mut mem = MainMemory::new();
    let program = w.cape_setup(&mut mem);
    JobSpec::new(format!("{}#{instance}", w.name()), program, mem)
        .with_priority((instance % 4) as u8)
}

/// Submits the full 64-job mix and drains it, returning the report, the
/// (job id, kernel index) pairs for digest verification, and the host
/// wall time of the drain in milliseconds.
fn serve(fault: Option<FaultPolicy>) -> (EngineReport, Vec<(JobId, usize)>, Engine, f64) {
    let suite = phoenix::tiny_suite();
    let mut engine = Engine::new(EngineConfig {
        queue_capacity: suite.len() * INSTANCES_PER_KERNEL,
        slice_vectors: 16,
        max_batch: INSTANCES_PER_KERNEL,
        machine: CapeConfig::tiny(CHAINS),
        fault,
    });
    let mut ids = Vec::new();
    for instance in 0..INSTANCES_PER_KERNEL {
        for (k, w) in suite.iter().enumerate() {
            let spec = job(w.as_ref(), instance);
            ids.push((engine.submit(spec).expect("queue sized for mix"), k));
        }
    }
    assert_eq!(ids.len(), 64);
    let t0 = std::time::Instant::now();
    let report = engine.run();
    let host_ms = t0.elapsed().as_secs_f64() * 1e3;
    (report, ids, engine, host_ms)
}

/// Every finished job must be bit-identical to its solo digest; every
/// unfinished job must carry a typed error. Returns (completed, failed).
fn audit(
    label: &str,
    report: &EngineReport,
    ids: &[(JobId, usize)],
    engine: &Engine,
    solo: &[u64],
) -> (usize, usize) {
    let suite = phoenix::tiny_suite();
    let (mut completed, mut failed) = (0, 0);
    for (id, k) in ids {
        let jr = report
            .jobs
            .iter()
            .find(|j| j.id == *id)
            .expect("every admitted job is reported");
        if jr.succeeded() {
            let digest = suite[*k].digest(engine.memory(*id).expect("finished"));
            assert_eq!(
                digest, solo[*k],
                "{label}: SILENT CORRUPTION — {} completed with a wrong digest",
                jr.name
            );
            completed += 1;
        } else {
            // `succeeded() == false` guarantees a typed JobError is
            // attached; surface it so the storm log shows the failure
            // taxonomy.
            let err = jr.error.as_ref().expect("failed jobs carry typed errors");
            println!("  {label}: {} failed typed: {err}", jr.name);
            failed += 1;
        }
    }
    (completed, failed)
}

fn main() {
    section("fault-storm — 64-tenant serving under seeded injection");
    let config = CapeConfig::tiny(CHAINS);
    let suite = phoenix::tiny_suite();
    let solo: Vec<u64> = suite
        .iter()
        .map(|w| run_cape(w.as_ref(), &config).digest)
        .collect();

    // Run 1 — fault-free fast path: the baseline for digests and cycles.
    let (clean, clean_ids, clean_engine, clean_ms) = serve(None);
    let (done, _) = audit("clean", &clean, &clean_ids, &clean_engine, &solo);
    assert_eq!(done, 64, "clean run must complete every job");
    assert_eq!(clean.retries, 0, "no retries without fault mode");

    // Run 2 — quiescent fault mode: detection tiers and checkpointing
    // armed, zero injections. Measures the pure cost of vigilance.
    let (quiet, quiet_ids, quiet_engine, quiet_ms) = serve(Some(FaultPolicy::quiescent()));
    let (done, _) = audit("quiescent", &quiet, &quiet_ids, &quiet_engine, &solo);
    assert_eq!(done, 64, "quiescent run must complete every job");
    assert_eq!(quiet.retries, 0, "nothing injected, nothing to retry");
    assert!(quiet.fault.scrubs > 0, "scrub must run in fault mode");
    assert_eq!(quiet.fault.injected_total(), 0);

    // Run 3 — the storm: all three fault classes armed under a fixed
    // seed, with enough spares that detected faults remap instead of
    // exhausting the machine.
    let storm_policy = FaultPolicy {
        csb: FaultConfig {
            seed: STORM_SEED,
            spare_blocks_per_shard: 16,
            stuck_ppm: 1_500,
            transient_ppm: 3_000,
            dead_ppm: 300,
            max_faults: 12,
            spot_check_interval: 16,
        },
        max_retries: 4,
        retry_backoff_cycles: 2_000,
        slice_fuel: 200_000,
    };
    let (storm, storm_ids, storm_engine, storm_ms) = serve(Some(storm_policy));
    let (completed, failed) = audit("storm", &storm, &storm_ids, &storm_engine, &solo);
    assert_eq!(completed + failed, 64, "every job accounted for");

    let f = &storm.fault;
    let overhead_quiescent = quiet.total_cycles as f64 / clean.total_cycles as f64;
    let overhead_storm = storm.total_cycles as f64 / clean.total_cycles as f64;

    println!("jobs completed          : {completed}/64 ({failed} failed typed)");
    println!(
        "faults injected         : {} ({} stuck / {} transient / {} dead)",
        f.injected_total(),
        f.injected_stuck,
        f.injected_transient,
        f.injected_dead
    );
    println!(
        "detections              : {} parity + {} golden + {} scrub, {} attributed",
        f.detected_parity, f.detected_golden, f.detected_scrub, f.faults_attributed
    );
    println!(
        "healing                 : {} blocks quarantined, {} remapped, {} spares left",
        f.blocks_quarantined, f.blocks_remapped, storm.spare_blocks_free
    );
    println!(
        "scrub passes            : {} (quiescent run: {})",
        f.scrubs, quiet.fault.scrubs
    );
    println!("checkpointed retries    : {}", storm.retries);
    println!(
        "cycles clean/quiet/storm: {} / {} / {}",
        clean.total_cycles, quiet.total_cycles, storm.total_cycles
    );
    println!("overhead quiescent      : {overhead_quiescent:.3}x");
    println!("overhead under storm    : {overhead_storm:.3}x");
    println!(
        "host ms clean/quiet/storm: {clean_ms:.1} / {quiet_ms:.1} / {storm_ms:.1} ({:.2}x / {:.2}x)",
        quiet_ms / clean_ms,
        storm_ms / clean_ms
    );

    assert!(
        f.injected_total() > 0,
        "seed {STORM_SEED:#x} must inject at least one fault for the gate to mean anything"
    );
    assert!(
        f.fully_accounted(),
        "ACCOUNTING HOLE: {} faults injected but only {} attributed to detections",
        f.injected_total(),
        f.faults_attributed
    );
    assert!(
        storm.retries > 0,
        "detections must force checkpointed re-execution"
    );
    assert!(
        completed >= 48,
        "storm should ride out most jobs ({completed}/64 completed)"
    );
    // PR 7 perf gate: with incremental in-kernel parity, quiescent fault
    // mode is an O(touched blocks) syndrome drain, not an O(all rows)
    // rescan. Locally it measures ~1.2x; the 2.0x ceiling absorbs CI
    // runner noise while still failing loudly if a rescan ever creeps
    // back (the pre-incremental model measured ~13x here).
    let host_ratio = quiet_ms / clean_ms;
    assert!(
        host_ratio <= 2.0,
        "FAULT-MODE OVERHEAD REGRESSION: quiescent host wall-clock is \
         {host_ratio:.2}x the clean run (gate: <= 2.0x). Did a full-state \
         rescan sneak back into the parity path?"
    );
    println!("fault-storm: OK");
}

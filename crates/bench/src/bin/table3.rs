//! Regenerates Table III: the experimental setup — baseline core, CAPE
//! control processor, cache hierarchies and the shared memory system.

use cape_baseline::OooConfig;
use cape_bench::section;
use cape_core::CapeConfig;
use cape_mem::CacheConfig;

fn cache_line(name: &str, c: CacheConfig) {
    println!(
        "  {:<6} {:>7} KiB, {:>2}-way, {:>3} B lines, {:>2}-cycle tag/data, {} sets",
        name,
        c.size_bytes / 1024,
        c.ways,
        c.line_bytes,
        c.latency,
        c.sets()
    );
}

fn main() {
    section("Table III — experimental setup");

    println!("\nBaseline core (out-of-order, per tile):");
    let b = OooConfig::default();
    println!(
        "  {}-issue @ {} GHz, 224 ROB / 72 LQ / 56 SQ (modeled as MLP {})",
        b.issue_width, b.freq_ghz, b.mlp
    );
    println!(
        "  {}/{}/{}/{} Int/Mul/Mem/Br units, tournament BP ({}% residual misses, {}-cycle redirect)",
        b.int_units, b.mul_units, b.mem_units, b.branch_units,
        b.mispredict_rate * 100.0, b.branch_penalty
    );
    cache_line("L1", CacheConfig::l1(64));
    cache_line("L2", CacheConfig::l2(64));
    cache_line("L3", CacheConfig::l3(512));

    println!("\nCAPE control processor (in-order):");
    let c32 = CapeConfig::cape32k();
    println!(
        "  2-issue in-order @ {} GHz, no L3 (CSB is cacheless)",
        c32.freq_ghz
    );
    cache_line("L1", CacheConfig::l1(64));
    cache_line("L2", CacheConfig::l2(512));

    println!("\nCAPE configurations:");
    for cfg in [CapeConfig::cape32k(), CapeConfig::cape131k()] {
        println!(
            "  {:<10} {:>5} chains x 32 lanes = {:>7} lanes, {:>2} MiB CSB, {} GHz",
            cfg.name,
            cfg.chains,
            cfg.max_vl(),
            cfg.capacity_bytes() / (1 << 20),
            cfg.freq_ghz
        );
    }

    println!("\nMain memory (shared by every configuration):");
    let h = c32.hbm;
    println!(
        "  4H HBM: {} channels x {} GB/s = {} GB/s aggregate, {} MiB/channel,",
        h.channels,
        h.gbps_per_channel,
        h.peak_bytes_per_ns(),
        h.mib_per_channel
    );
    println!(
        "  {} B data-bus packets (the VMU sub-request granule), ~{} ns first access",
        h.packet_bytes, h.latency_ns
    );

    println!("\nArea reference: each design point is area-matched at ~9 mm^2 in");
    println!("7 nm — CAPE32k vs one baseline tile, CAPE131k vs two (Section VI-C).");
}

//! Regenerates Table I: per-instruction metrics of the RISC-V vector
//! instructions CAPE supports — truth-table entries, cycle counts and
//! energy per lane — comparing the paper's published values against this
//! emulator's measured microop counts and Table-II-derived energies.

use cape_bench::section;
use cape_core::microop_energy_pj;
use cape_csb::{Csb, CsbGeometry};
use cape_ucode::metrics::{all_kinds, extension_cycles, measure, paper_row};
use cape_ucode::truth_table::BitSerialAlgorithm;
use cape_ucode::{Sequencer, VectorOp, VectorOpKind};

fn measured_energy_per_lane(kind: VectorOpKind) -> Option<f64> {
    let op = match kind {
        VectorOpKind::Add => VectorOp::Add {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOpKind::Sub => VectorOp::Sub {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOpKind::Mul => VectorOp::Mul {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOpKind::And => VectorOp::And {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOpKind::Or => VectorOp::Or {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOpKind::Xor => VectorOp::Xor {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOpKind::MseqVv => VectorOp::Mseq {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOpKind::MseqVx => VectorOp::MseqScalar {
            vd: 3,
            vs1: 1,
            rs: 42,
        },
        VectorOpKind::Mslt => VectorOp::Mslt {
            vd: 3,
            vs1: 1,
            vs2: 2,
            signed: true,
        },
        VectorOpKind::Merge => VectorOp::Merge {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOpKind::RedSum => VectorOp::RedSum { vd: 3, vs: 1 },
        _ => return None,
    };
    let mut csb = Csb::new(CsbGeometry::new(1));
    let a: Vec<u32> = (0..32u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
    csb.write_vector(0, &a);
    csb.write_vector(1, &a);
    csb.write_vector(2, &a);
    let out = Sequencer::new(&mut csb).execute(&op);
    Some(microop_energy_pj(&out.stats, 1) / 32.0)
}

fn main() {
    section("Table I — RISC-V vector instruction metrics (n = 32 bits)");
    println!(
        "{:<12} {:>8} {:>8} | {:>14} {:>10} | {:>10} {:>10}",
        "instr", "TT(pap)", "TT(ours)", "cycles(paper)", "uops(ours)", "pJ/l(pap)", "pJ/l(ours)"
    );
    println!("{}", "-".repeat(86));
    for &kind in all_kinds() {
        let m = measure(kind);
        let ours_entries = match kind {
            VectorOpKind::Add | VectorOpKind::Mul => BitSerialAlgorithm::adder().entries(),
            VectorOpKind::Sub => BitSerialAlgorithm::subtractor().entries(),
            VectorOpKind::Increment => BitSerialAlgorithm::incrementer().entries(),
            VectorOpKind::And | VectorOpKind::Or | VectorOpKind::MseqVx => 1,
            VectorOpKind::Xor | VectorOpKind::MseqVv => 2,
            VectorOpKind::Mslt => 4,
            VectorOpKind::Merge => 2,
            VectorOpKind::RedSum | VectorOpKind::Cpop => 1,
            _ => 0,
        };
        let energy = measured_energy_per_lane(kind);
        match paper_row(kind) {
            Some(row) => {
                println!(
                    "{:<12} {:>8} {:>8} | {:>10} ={:>3} {:>10} | {:>10.1} {:>10}",
                    row.mnemonic,
                    row.tt_entries,
                    ours_entries,
                    row.total_cycles.to_string(),
                    row.total_cycles.eval(32),
                    m.microops,
                    row.energy_pj_per_lane,
                    energy.map_or("-".into(), |e| format!("{e:.1}")),
                );
            }
            None => {
                let cyc =
                    extension_cycles(kind).map_or("-".into(), |f| format!("{} ={}", f, f.eval(32)));
                println!(
                    "{:<12} {:>8} {:>8} | {:>14} {:>10} | {:>10} {:>10}",
                    format!("{kind:?}").to_lowercase(),
                    "-",
                    ours_entries,
                    cyc,
                    m.microops,
                    "-",
                    energy.map_or("-".into(), |e| format!("{e:.1}")),
                );
            }
        }
    }
    println!();
    println!("Notes:");
    println!("* 'cycles(paper)' is Table I's closed form (the timing model);");
    println!("  'uops(ours)' is the exact microop count the emulator executes.");
    println!("* energies derive from Table II per-microop constants x the");
    println!("  emulated microop mix; rows below the rule are documented");
    println!("  extensions the paper does not list individually.");
}

//! Regenerates the microbenchmark study (Fig. 9 of the paper; the set is
//! reconstructed — see DESIGN.md): speedup of CAPE32k over the
//! area-equivalent out-of-order core for each microbenchmark, plus the
//! roofline coordinates feeding the Fig. 10 discussion.

use cape_bench::{geomean, quick_scale, section, Measurement};
use cape_core::{CapeConfig, Roofline, RooflinePoint};
use cape_workloads::micro;

fn main() {
    let n = if quick_scale() { 20_000 } else { 200_000 };
    section(&format!(
        "Fig. 9 — microbenchmark speedups (n = {n}, CAPE32k vs 1 OoO core)"
    ));

    let config = CapeConfig::cape32k();
    let roofline = Roofline::cape(&config);
    println!(
        "{:<10} {:>12} {:>12} {:>9} | {:>10} {:>10} {:>7}",
        "bench", "cape (ms)", "base (ms)", "speedup", "ops/byte", "Gops/s", "bound"
    );
    println!("{}", "-".repeat(78));
    let mut speedups = Vec::new();
    for w in micro::suite(n) {
        let m = Measurement::take(w.as_ref(), &config);
        let point = RooflinePoint::from_report(m.name, &m.cape.report);
        let s = m.speedup_1core();
        speedups.push(s);
        println!(
            "{:<10} {:>12.4} {:>12.4} {:>8.1}x | {:>10.3} {:>10.2} {:>7}",
            m.name,
            m.cape.report.time_ms(),
            m.baseline.report.time_ms(),
            s,
            point.intensity,
            point.gops,
            if point.is_memory_bound(&roofline) {
                "memory"
            } else {
                "compute"
            },
        );
    }
    println!("{}", "-".repeat(78));
    println!("geomean speedup: {:.1}x", geomean(&speedups));
    println!();
    println!(
        "CAPE32k roofline: {:.0} Gops/s compute ceiling, {:.0} GB/s memory roof,",
        roofline.peak_gops, roofline.peak_gbps
    );
    println!("ridge at {:.2} ops/byte.", roofline.ridge_intensity());
    println!();
    println!("Expected shape (Section VI-D): search-style kernels dominate;");
    println!("streaming kernels (vvadd/memcpy) sit on the memory roof; idxsrch");
    println!("is capped by its serialized per-match post-processing.");
}

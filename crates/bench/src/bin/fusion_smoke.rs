//! Release gate for cross-instruction microprogram fusion.
//!
//! 1. **Differential at serving scale:** the 64-job Phoenix stress mix
//!    (8 kernels × 8 instances) drains through `cape-engine` twice —
//!    fused windows on (default config) and off (`fusion_window = 1`) —
//!    and every job's output digest must be bit-identical between the
//!    two runs *and* to its solo-machine reference.
//! 2. **Performance:** on the 4k-chain Phoenix string-match scan (text
//!    CSB-resident, each sweep one whole window of short-microprogram
//!    ops), fused host wall-clock must be ≤ 0.7× the per-op path, and
//!    the fused `RunReport` must show the join-count collapse that
//!    buys it.
//! 3. **Mixed SEW:** the e8→e16 sweep variant must fuse each sweep into
//!    exactly one window (unchanged-`vl` `vsetvli` flush count zero) at
//!    ≤ 0.75× per-op host wall-clock.
//! 4. **Dead stores:** that same 32-op gate kernel under the v2 window
//!    compiler (`fusion_reorder = true`) must retire strictly more
//!    plan-level stores than the in-order pipeline, with digests and
//!    modeled cycles bit-identical.
//!
//! Panics (non-zero exit) on any violation, so CI runs it as-is in
//! `--release`.

use std::time::Instant;

use cape_bench::{fusion, section};
use cape_core::{CapeConfig, CapeMachine, RunReport};
use cape_engine::{Engine, EngineConfig, JobSpec};
use cape_mem::MainMemory;
use cape_workloads::{phoenix, run_cape, Workload};

const STRESS_CHAINS: usize = 4;
const INSTANCES_PER_KERNEL: usize = 8;
const GATE_RATIO: f64 = 0.7;
const MIXED_GATE_RATIO: f64 = 0.75;
const ITERS: usize = 40;

fn job(w: &dyn Workload, instance: usize) -> JobSpec {
    let mut mem = MainMemory::new();
    let program = w.cape_setup(&mut mem);
    JobSpec::new(format!("{}#{instance}", w.name()), program, mem)
}

/// Drains the 64-job mix with the given fusion window and returns every
/// job's output digest, in submission order.
fn drain_digests(fusion_window: usize) -> Vec<u64> {
    let mut machine = CapeConfig::tiny(STRESS_CHAINS);
    machine.fusion_window = fusion_window;
    let suite = phoenix::tiny_suite();
    let mut engine = Engine::new(EngineConfig {
        queue_capacity: suite.len() * INSTANCES_PER_KERNEL,
        slice_vectors: 16,
        max_batch: INSTANCES_PER_KERNEL,
        machine,
        fault: None,
    });
    let mut ids = Vec::new();
    for instance in 0..INSTANCES_PER_KERNEL {
        for (k, w) in suite.iter().enumerate() {
            ids.push((engine.submit(job(w.as_ref(), instance)).expect("room"), k));
        }
    }
    assert_eq!(ids.len(), 64);
    let report = engine.run();
    assert_eq!(report.completed(), 64, "every job must halt cleanly");
    ids.iter()
        .map(|(id, k)| suite[*k].digest(engine.memory(*id).expect("finished")))
        .collect()
}

/// One timed run of the 4k-chain loop; returns host seconds, the
/// report, and the output digest.
fn timed_run(
    fusion_window: usize,
    reorder: bool,
    program: &cape_isa::Program,
) -> (f64, RunReport, u64) {
    let mut config = fusion::config();
    config.fusion_window = fusion_window;
    config.fusion_reorder = reorder;
    let max_vl = config.max_vl();
    let mut machine = CapeMachine::new(config);
    let mut mem = fusion::input(max_vl);
    let t0 = Instant::now();
    let report = machine.run(program, &mut mem).expect("gate kernel runs");
    let dt = t0.elapsed().as_secs_f64();
    (dt, report, fusion::digest(&mem, max_vl))
}

/// Median of three timed runs (same machine shape, fresh state each).
fn median_run(
    fusion_window: usize,
    reorder: bool,
    program: &cape_isa::Program,
) -> (f64, RunReport, u64) {
    let mut runs: Vec<(f64, RunReport, u64)> = (0..3)
        .map(|_| timed_run(fusion_window, reorder, program))
        .collect();
    runs.sort_by(|a, b| a.0.total_cmp(&b.0));
    runs.swap_remove(1)
}

fn main() {
    section("fusion-smoke — 64-job differential");
    let suite = phoenix::tiny_suite();
    let solo: Vec<u64> = suite
        .iter()
        .map(|w| run_cape(w.as_ref(), &CapeConfig::tiny(STRESS_CHAINS)).digest)
        .collect();
    let fused = drain_digests(32);
    let per_op = drain_digests(1);
    assert_eq!(fused.len(), per_op.len());
    let mut mismatches = 0;
    for (i, (f, p)) in fused.iter().zip(&per_op).enumerate() {
        let reference = solo[i % suite.len()];
        if *f != *p || *f != reference {
            eprintln!("DIGEST MISMATCH job {i}: fused {f:#x} per-op {p:#x} solo {reference:#x}");
            mismatches += 1;
        }
    }
    assert_eq!(mismatches, 0, "{mismatches} jobs diverged under fusion");
    println!("64/64 digests bit-identical: fused == per-op == solo");

    section("fusion-smoke — 4k-chain Phoenix string-match wall-clock");
    let max_vl = fusion::config().max_vl();
    let program = fusion::phoenix_loop(max_vl, ITERS);
    let (fused_s, fused_report, fused_digest) = median_run(32, true, &program);
    let (plain_s, plain_report, plain_digest) = median_run(1, true, &program);
    assert_eq!(fused_digest, plain_digest, "4k-chain outputs diverged");
    assert_eq!(
        fused_report.cycles, plain_report.cycles,
        "modeled timing must be fusion-invariant"
    );
    assert!(plain_report.fused_windows == 0 && plain_report.fused_joins_saved == 0);
    assert!(
        fused_report.fused_windows > 0 && fused_report.fused_joins_saved > 0,
        "gate loop must actually fuse"
    );
    let ratio = fused_s / plain_s;
    println!("max_vl {max_vl}, {ITERS} iterations");
    println!(
        "fused   {:>8.1} ms  ({} windows, {} ops fused, {} joins saved)",
        fused_s * 1e3,
        fused_report.fused_windows,
        fused_report.fused_ops,
        fused_report.fused_joins_saved
    );
    println!("per-op  {:>8.1} ms", plain_s * 1e3);
    println!("ratio   {ratio:.3}x (gate: <= {GATE_RATIO}x)");
    assert!(
        ratio <= GATE_RATIO,
        "fusion regressed: fused/per-op host ratio {ratio:.3} > {GATE_RATIO}"
    );

    section("fusion-smoke — mixed-SEW sweep (e8 → e16 inside one window)");
    let mixed = fusion::phoenix_loop_mixed(max_vl, ITERS);
    let (mfused_s, mfused_report, mfused_digest) = median_run(32, true, &mixed);
    let (mplain_s, mplain_report, mplain_digest) = median_run(1, true, &mixed);
    assert_eq!(mfused_digest, mplain_digest, "mixed-SEW outputs diverged");
    assert_eq!(
        mfused_report.cycles, mplain_report.cycles,
        "mixed-SEW modeled timing must be fusion-invariant"
    );
    assert_eq!(
        mfused_report.window_flushes.vsetvli, 0,
        "unchanged-vl vsetvli retargets must not flush the window"
    );
    assert_eq!(
        mfused_report.window_flushes.capacity, ITERS as u64,
        "every sweep must end on a full window"
    );
    assert_eq!(
        mfused_report.fused_windows,
        ITERS as u64 + 1,
        "each mixed-SEW sweep must fuse into exactly one window"
    );
    let mratio = mfused_s / mplain_s;
    println!(
        "fused   {:>8.1} ms  ({} windows, {} ops fused, vsetvli flushes {})",
        mfused_s * 1e3,
        mfused_report.fused_windows,
        mfused_report.fused_ops,
        mfused_report.window_flushes.vsetvli
    );
    println!("per-op  {:>8.1} ms", mplain_s * 1e3);
    println!("ratio   {mratio:.3}x (gate: <= {MIXED_GATE_RATIO}x)");
    assert!(
        mratio <= MIXED_GATE_RATIO,
        "mixed-SEW fusion regressed: fused/per-op host ratio {mratio:.3} > {MIXED_GATE_RATIO}"
    );

    section("fusion-smoke — window compiler v2 dead-store elimination");
    let (_, inorder_report, inorder_digest) = median_run(32, false, &mixed);
    assert_eq!(
        mfused_digest, inorder_digest,
        "reordering changed the gate kernel's output"
    );
    assert_eq!(
        inorder_report.cycles, mfused_report.cycles,
        "modeled timing must be reorder-invariant"
    );
    println!(
        "dead stores retired: v2 (reorder) {}, in-order {}",
        mfused_report.dead_stores_eliminated, inorder_report.dead_stores_eliminated
    );
    assert!(
        mfused_report.dead_stores_eliminated > inorder_report.dead_stores_eliminated,
        "window compiler v2 must retire strictly more dead stores than the in-order pipeline \
         ({} vs {})",
        mfused_report.dead_stores_eliminated,
        inorder_report.dead_stores_eliminated
    );
    println!("\nfusion-smoke PASS");
}

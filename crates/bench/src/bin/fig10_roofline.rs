//! Regenerates Fig. 10: the Roofline placement of the Phoenix
//! applications on CAPE32k and CAPE131k. Constant-intensity applications
//! move up toward the memory roof as the CSB grows; variable-intensity
//! (text) applications stay far below both roofs.

use cape_bench::{quick_scale, section};
use cape_core::{CapeConfig, Roofline, RooflinePoint};
use cape_workloads::{phoenix, run_cape};

fn main() {
    let suite = if quick_scale() {
        phoenix::tiny_suite()
    } else {
        phoenix::suite()
    };
    section("Fig. 10 — Roofline placement of the Phoenix applications");

    for config in [CapeConfig::cape32k(), CapeConfig::cape131k()] {
        let roofline = Roofline::cape(&config);
        println!(
            "\n{}: compute roof {:.0} Gops/s, memory roof {:.0} GB/s, ridge {:.2} ops/B",
            config.name,
            roofline.peak_gops,
            roofline.peak_gbps,
            roofline.ridge_intensity()
        );
        println!(
            "{:<10} {:>12} {:>10} {:>12} {:>8}",
            "app", "ops/byte", "Gops/s", "% of roof", "bound"
        );
        println!("{}", "-".repeat(58));
        for w in &suite {
            let run = run_cape(w.as_ref(), &config);
            let p = RooflinePoint::from_report(w.name(), &run.report);
            println!(
                "{:<10} {:>12.3} {:>10.2} {:>11.1}% {:>8}",
                p.name,
                p.intensity,
                p.gops,
                100.0 * p.efficiency(&roofline),
                if p.is_memory_bound(&roofline) {
                    "memory"
                } else {
                    "compute"
                },
            );
        }
    }
    println!();
    println!("Expected shape: matmul/lreg/hist/kmeans (constant intensity) climb");
    println!("toward the rooflines as capacity quadruples; kmeans' intensity");
    println!("itself rises at 131k because the dataset becomes CSB-resident;");
    println!("wrdcnt/revidx/strmatch stay far below the roofs (Amdahl).");
}

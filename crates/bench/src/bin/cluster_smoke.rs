//! Cluster smoke gate: a 4-machine `cape-cluster` fleet serves the
//! 64-job Phoenix mix while one machine is fault-stormed with dead
//! blocks mid-run. Verifies the fleet contract end to end — every
//! admitted job completes with a digest bit-identical to a solo run,
//! zero jobs are lost or duplicated, the struck machine leaves rotation
//! and its queue migrates with full accounting — and gates the host
//! wall-clock overhead of riding out the storm (detection, drain,
//! migration, re-runs) at ≤ 2.0x a clean fleet drain. Exits non-zero on
//! any violation, so CI runs it as a `cluster-smoke` gate in
//! `--release`.

use cape_bench::section;
use cape_cluster::{Cluster, ClusterConfig, ClusterJobId, ClusterReport, HealthState};
use cape_core::{CapeConfig, FaultKind};
use cape_engine::{EngineConfig, FaultPolicy, JobSpec};
use cape_mem::MainMemory;
use cape_workloads::{phoenix, run_cape, Workload};

const MACHINES: usize = 4;
const CHAINS: usize = 4;
const INSTANCES_PER_KERNEL: usize = 8;
const VICTIM: usize = 0;
const STRIKES: usize = 4;

fn job(w: &dyn Workload, instance: usize) -> JobSpec {
    let mut mem = MainMemory::new();
    let program = w.cape_setup(&mut mem);
    JobSpec::new(format!("{}#{instance}", w.name()), program, mem)
        .with_priority((instance % 4) as u8)
}

fn fleet(fault: Option<FaultPolicy>) -> Cluster {
    Cluster::new(ClusterConfig::new(
        MACHINES,
        EngineConfig {
            queue_capacity: 64,
            slice_vectors: 16,
            // Small batches keep per-machine queues occupied across many
            // scheduling steps, so the mid-run storm hits a machine that
            // still holds unstarted work — the drain path under test.
            max_batch: 2,
            machine: CapeConfig::tiny(CHAINS),
            fault,
        },
    ))
}

fn submit_mix(cluster: &mut Cluster) -> Vec<(ClusterJobId, usize)> {
    let suite = phoenix::tiny_suite();
    let mut ids = Vec::new();
    for instance in 0..INSTANCES_PER_KERNEL {
        for (k, w) in suite.iter().enumerate() {
            let spec = job(w.as_ref(), instance);
            ids.push((cluster.submit(spec).expect("fleet sized for mix"), k));
        }
    }
    assert_eq!(ids.len(), 64);
    ids
}

/// Every job must have completed bit-identically to its solo digest.
fn audit(
    label: &str,
    report: &ClusterReport,
    ids: &[(ClusterJobId, usize)],
    c: &Cluster,
    solo: &[u64],
) {
    let suite = phoenix::tiny_suite();
    assert_eq!(report.admitted(), 64, "{label}: admission shortfall");
    assert_eq!(
        report.lost(),
        0,
        "{label}: JOBS LOST — every admitted job needs a final accounting"
    );
    assert_eq!(
        report.completed(),
        64,
        "{label}: incomplete drain ({} failed, {} stranded)",
        report.failed(),
        report.stranded()
    );
    for (id, k) in ids {
        let digest = suite[*k].digest(c.memory(*id).expect("completed"));
        assert_eq!(
            digest, solo[*k],
            "{label}: SILENT CORRUPTION — {id} diverged from the solo digest"
        );
    }
    // Zero duplication: fleet counters are exactly the per-job sums.
    assert_eq!(
        report.migrations,
        report.jobs.iter().map(|j| j.migrations).sum::<u64>(),
        "{label}: migration accounting hole"
    );
    assert_eq!(
        report.resubmissions,
        report.jobs.iter().map(|j| j.resubmissions).sum::<u64>(),
        "{label}: resubmission accounting hole"
    );
}

fn main() {
    section("cluster-smoke — 4-machine fleet, one machine fault-stormed");
    let config = CapeConfig::tiny(CHAINS);
    let suite = phoenix::tiny_suite();
    let solo: Vec<u64> = suite
        .iter()
        .map(|w| run_cape(w.as_ref(), &config).digest)
        .collect();

    // Run 1 — clean fleet: no fault policy, no strikes. The wall-clock
    // and digest baseline.
    let mut clean = fleet(None);
    let clean_ids = submit_mix(&mut clean);
    let t0 = std::time::Instant::now();
    let clean_report = clean.run();
    let clean_ms = t0.elapsed().as_secs_f64() * 1e3;
    audit("clean", &clean_report, &clean_ids, &clean, &solo);
    assert_eq!(clean_report.migrations, 0, "no faults, no migration");

    // Run 2 — the storm: every machine armed (detection + checkpointing),
    // then machine 0 takes repeated dead-block hits while its queue still
    // holds unstarted jobs. The health monitor must pull it from
    // rotation, drain its queue to healthy peers and re-run anything it
    // failed machine-side.
    let mut storm = fleet(Some(FaultPolicy::quiescent()));
    let storm_ids = submit_mix(&mut storm);
    let t0 = std::time::Instant::now();
    assert!(storm.step(), "first round serves a batch per machine");
    for _ in 0..STRIKES {
        storm
            .strike(VICTIM, 0, FaultKind::DeadBlock)
            .expect("fault policy armed");
        storm.step();
    }
    let storm_report = storm.run();
    let storm_ms = t0.elapsed().as_secs_f64() * 1e3;
    audit("storm", &storm_report, &storm_ids, &storm, &solo);

    let victim_state = storm.health(VICTIM);
    let overhead_cycles =
        storm_report.makespan_cycles() as f64 / clean_report.makespan_cycles() as f64;
    let overhead_host = storm_ms / clean_ms;
    let migration_latency = storm_report.migration_queue_latency();
    let queue_latency = storm_report.queue_latency();

    println!(
        "jobs completed           : {}/64 (clean and storm)",
        storm_report.completed()
    );
    println!("victim machine {VICTIM}         : {victim_state} after {STRIKES} dead-block strikes");
    println!(
        "migrations / re-runs     : {} drained + {} resubmitted ({} health transitions)",
        storm_report.migrations,
        storm_report.resubmissions,
        storm_report.transitions.len()
    );
    println!(
        "fleet throughput         : clean {:.2} jobs/ms, storm {:.2} jobs/ms (makespan {} / {} cycles)",
        clean_report.jobs_per_ms(),
        storm_report.jobs_per_ms(),
        clean_report.makespan_cycles(),
        storm_report.makespan_cycles()
    );
    println!(
        "utilization skew         : clean {:.3}, storm {:.3}",
        clean_report.utilization_skew(),
        storm_report.utilization_skew()
    );
    println!(
        "queue latency (storm)    : p50 {} / p90 {} / max {} cycles",
        queue_latency.p50, queue_latency.p90, queue_latency.max
    );
    println!(
        "migration queue latency  : p50 {} / p90 {} / max {} cycles",
        migration_latency.p50, migration_latency.p90, migration_latency.max
    );
    println!("makespan overhead        : {overhead_cycles:.3}x cycles");
    println!("host ms clean/storm      : {clean_ms:.1} / {storm_ms:.1} ({overhead_host:.2}x)");

    assert!(
        victim_state > HealthState::Healthy,
        "the storm must pull the victim from rotation (still {victim_state})"
    );
    assert!(
        storm_report.migrations > 0,
        "a struck machine with a loaded queue must drain"
    );
    assert!(
        !storm_report.transitions.is_empty(),
        "health transitions must be recorded"
    );
    // PR 8 perf gate: fleet fault handling is drain + resubmit, not a
    // fleet-wide stall — the storm run (quiescent detection everywhere,
    // one machine draining) must stay within 2.0x of a clean fleet drain
    // in host wall-clock. Locally this measures ~1.3x; the ceiling
    // absorbs CI runner noise.
    assert!(
        overhead_host <= 2.0,
        "FLEET OVERHEAD REGRESSION: storm host wall-clock is {overhead_host:.2}x \
         the clean fleet run (gate: <= 2.0x)"
    );
    println!("cluster-smoke: OK");
}

//! Release gate for the block-SoA kernel layer: a fast differential
//! harness plus a coarse performance ratio check.
//!
//! 1. **Differential:** representative vector ops (bit-serial adder,
//!    signed compare, reduction, scalar compare) run through the
//!    block-backed [`Csb`] and through scalar reference [`Chain`]s
//!    seeded with identical state, on full and partial windows; every
//!    reduction sum and every chain's final state must be bit-exact.
//! 2. **Ratio:** a whole `vadd.vv` program through the block path must
//!    be no slower than the scalar chain-at-a-time broadcast sweep it
//!    replaced, with a generous 1.2× noise margin.
//!
//! Exits non-zero (panics) on any mismatch, so CI can run it as-is.

use std::time::Instant;

use cape_csb::{Chain, Csb, CsbGeometry, MicroOp, MicroProgram};
use cape_ucode::{CompiledOp, VectorOp};

const CHAINS: usize = 1024;

/// Deterministically seeded CSB (same scheme as the differential tests).
fn seeded_csb() -> Csb {
    let mut csb = Csb::new(CsbGeometry::new(CHAINS));
    let n = csb.max_vl();
    let mut state = 0x9E37_79B9_u32;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        state
    };
    for reg in [0usize, 1, 2, 3] {
        let vals: Vec<u32> = (0..n).map(|_| next()).collect();
        csb.write_vector(reg, &vals);
    }
    csb
}

/// The scalar chain-at-a-time broadcast sweep the block kernels replaced:
/// op-by-op over every non-gated chain, collecting `ReduceTags` sums.
fn scalar_sweep(chains: &mut [Chain], windows: &[u32], program: &MicroProgram) -> Vec<u64> {
    let mut sums = vec![0u64; program.reduce_count()];
    for (chain, &window) in chains.iter_mut().zip(windows) {
        if window == 0 {
            continue;
        }
        let mut k = 0;
        for op in program.ops() {
            let r = chain.execute(op, window);
            if matches!(op, MicroOp::ReduceTags { .. }) {
                sums[k] += u64::from(r.expect("ReduceTags returns a count"));
                k += 1;
            }
        }
    }
    sums
}

fn differential(op: &VectorOp, vstart: usize, vl: usize) {
    let mut csb = seeded_csb();
    csb.set_active_window(vstart, vl);
    let mut reference: Vec<Chain> = (0..CHAINS).map(|c| csb.chain(c)).collect();
    let windows: Vec<u32> = (0..CHAINS).map(|c| csb.window(c)).collect();

    let compiled = CompiledOp::compile(op, 32);
    let block_sums = csb.execute_program(compiled.program());
    let ref_sums = scalar_sweep(&mut reference, &windows, compiled.program());

    let ctx = format!("{op:?} window={vstart}..{vl}");
    assert_eq!(block_sums, ref_sums, "reduction sums diverged: {ctx}");
    for (c, want) in reference.iter().enumerate() {
        assert_eq!(&csb.chain(c), want, "chain {c} diverged: {ctx}");
    }
    println!("  ok: {ctx}");
}

fn main() {
    println!("kernel-smoke: block-SoA kernels vs scalar Chain reference");
    println!("[1/2] differential ({CHAINS} chains)");
    let ops = [
        VectorOp::Add {
            vd: 3,
            vs1: 1,
            vs2: 2,
        },
        VectorOp::Mslt {
            vd: 3,
            vs1: 1,
            vs2: 2,
            signed: true,
        },
        VectorOp::RedSum { vd: 3, vs: 1 },
        VectorOp::MseqScalar {
            vd: 3,
            vs1: 1,
            rs: 0x7F,
        },
    ];
    let max_vl = CHAINS * 32;
    for op in &ops {
        differential(op, 0, max_vl); // full window
        differential(op, 7, max_vl * 6 / 10); // restart + tail gating
    }

    println!("[2/2] coarse ratio (vadd.vv, {CHAINS} chains, best of 5)");
    let compiled = CompiledOp::compile(&ops[0], 32);
    let iters = 5;

    let mut csb = seeded_csb();
    let mut block_best = u128::MAX;
    for _ in 0..iters {
        let t = Instant::now();
        csb.execute_program(compiled.program());
        block_best = block_best.min(t.elapsed().as_nanos());
    }

    let seed = seeded_csb();
    let mut reference: Vec<Chain> = (0..CHAINS).map(|c| seed.chain(c)).collect();
    let windows: Vec<u32> = (0..CHAINS).map(|c| seed.window(c)).collect();
    let mut scalar_best = u128::MAX;
    for _ in 0..iters {
        let t = Instant::now();
        scalar_sweep(&mut reference, &windows, compiled.program());
        scalar_best = scalar_best.min(t.elapsed().as_nanos());
    }

    let ratio = block_best as f64 / scalar_best as f64;
    println!("  block  {block_best} ns");
    println!("  scalar {scalar_best} ns");
    println!("  ratio  {ratio:.3} (must be <= 1.2)");
    assert!(
        ratio <= 1.2,
        "block kernel path slower than the scalar sweep: {block_best} ns vs {scalar_best} ns"
    );
    println!("kernel-smoke: PASS");
}

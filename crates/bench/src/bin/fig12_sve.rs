//! Regenerates Fig. 12: SIMD (SVE-like, 128/256/512-bit, four vector
//! ALUs) speedups over the scalar core for the Phoenix applications, and
//! the paper's headline comparison — CAPE32k achieving more than five
//! times the performance of the most aggressive 512-bit configuration.

use cape_baseline::{SveModel, SveWidth};
use cape_bench::{geomean, quick_scale, section, Measurement};
use cape_core::CapeConfig;
use cape_workloads::phoenix;

fn main() {
    let suite = if quick_scale() {
        phoenix::tiny_suite()
    } else {
        phoenix::suite()
    };
    section("Fig. 12 — SVE SIMD speedups over scalar (vs CAPE32k)");

    let config = CapeConfig::cape32k();
    let sve = SveModel::default();
    println!(
        "{:<10} {:>9} {:>9} {:>9} | {:>10} {:>12}",
        "app", "sve-128", "sve-256", "sve-512", "cape32k", "cape/sve512"
    );
    println!("{}", "-".repeat(70));
    let mut ratios = Vec::new();
    let mut sve512_all = Vec::new();
    for w in &suite {
        let m = Measurement::take(w.as_ref(), &config);
        let scalar = &m.baseline.report;
        let s = |width| sve.speedup(&m.baseline.simd, scalar, width);
        let (s128, s256, s512) = (s(SveWidth::W128), s(SveWidth::W256), s(SveWidth::W512));
        let cape = m.speedup_1core();
        ratios.push(cape / s512);
        sve512_all.push(s512);
        println!(
            "{:<10} {:>8.2}x {:>8.2}x {:>8.2}x | {:>9.1}x {:>11.1}x",
            m.name,
            s128,
            s256,
            s512,
            cape,
            cape / s512
        );
    }
    println!("{}", "-".repeat(70));
    println!(
        "geomean: SVE-512 {:.2}x over scalar; CAPE32k is {:.1}x the SVE-512",
        geomean(&sve512_all),
        geomean(&ratios)
    );
    println!();
    println!("Paper's claim (Section VI-E): CAPE32k achieves, on average, more");
    println!("than five times the performance of the 512-bit SVE configuration");
    println!("(itself comparable to AVX-512).");
}

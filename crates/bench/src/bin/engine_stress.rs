//! Multi-tenant engine smoke test: drives 64 concurrent Phoenix jobs
//! through `cape-engine` and verifies the serving-layer invariants hold
//! at stress scale — bit-exact isolation against solo runs, >50%
//! cross-tenant program-cache amortization, and coherent queueing
//! metrics. Exits non-zero on any violation, so CI can run it as an
//! `engine-smoke` gate in `--release`.

use cape_bench::section;
use cape_core::CapeConfig;
use cape_engine::{Engine, EngineConfig, JobSpec};
use cape_mem::MainMemory;
use cape_workloads::{phoenix, run_cape, Workload};

const CHAINS: usize = 4;
const INSTANCES_PER_KERNEL: usize = 8;

fn job(w: &dyn Workload, instance: usize) -> JobSpec {
    let mut mem = MainMemory::new();
    let program = w.cape_setup(&mut mem);
    JobSpec::new(format!("{}#{instance}", w.name()), program, mem)
        .with_priority((instance % 4) as u8)
}

fn main() {
    section("engine-smoke — 64-tenant batch-scheduled serving");
    let config = CapeConfig::tiny(CHAINS);
    let suite = phoenix::tiny_suite();

    let solo: Vec<u64> = suite
        .iter()
        .map(|w| run_cape(w.as_ref(), &config).digest)
        .collect();

    let mut engine = Engine::new(EngineConfig {
        queue_capacity: suite.len() * INSTANCES_PER_KERNEL,
        slice_vectors: 16,
        max_batch: INSTANCES_PER_KERNEL,
        machine: config,
        fault: None,
    });
    let mut ids = Vec::new();
    for instance in 0..INSTANCES_PER_KERNEL {
        for (k, w) in suite.iter().enumerate() {
            // One tenant per kernel exercises the §V-C restart path
            // mid-batch.
            let mut spec = job(w.as_ref(), instance);
            if instance == 3 {
                spec = spec.with_fault_at(7);
            }
            ids.push((engine.submit(spec).expect("queue sized for mix"), k));
        }
    }
    assert_eq!(ids.len(), 64);

    let report = engine.run();
    assert_eq!(report.completed(), 64, "every tenant must halt cleanly");

    let mut mismatches = 0;
    for (id, k) in &ids {
        let digest = suite[*k].digest(engine.memory(*id).expect("finished"));
        if digest != solo[*k] {
            eprintln!(
                "ISOLATION VIOLATION: {} diverged from its solo digest",
                engine.job_report(*id).unwrap().name
            );
            mismatches += 1;
        }
    }
    assert_eq!(mismatches, 0, "{mismatches} tenants corrupted");
    assert!(
        report.cross_tenant_hit_rate > 0.5,
        "cross-tenant hit rate {:.3} <= 0.5",
        report.cross_tenant_hit_rate
    );
    let faults: u64 = report.jobs.iter().map(|j| j.faults).sum();
    assert_eq!(faults, suite.len() as u64, "one armed fault per kernel");

    let q = report.queue_latency;
    println!("jobs served            : {}", report.jobs.len());
    println!("engine cycles          : {}", report.total_cycles);
    println!("serving time           : {:.3} ms", report.time_ms());
    println!(
        "throughput             : {:.1} jobs/ms",
        report.jobs_per_ms()
    );
    println!("batches                : {}", report.batches);
    println!(
        "context switches       : {} ({:.1}% of cycles)",
        report.context_switches,
        100.0 * report.context_switch_overhead()
    );
    println!(
        "queue latency (cycles) : p50 {} / p90 {} / p99 {} / max {}",
        q.p50, q.p90, q.p99, q.max
    );
    println!(
        "program cache          : {:.1}% hits, {:.1}% of hits cross-tenant ({} hits)",
        100.0 * report.cache_hit_rate,
        100.0 * report.cross_tenant_hit_rate,
        report.cross_tenant_hits
    );
    println!("faults taken (armed)   : {faults}");
    println!("engine-smoke: OK");
}

//! Shared helpers for the table/figure regeneration binaries.
//!
//! Every binary prints a self-contained report to stdout; EXPERIMENTS.md
//! records paper-vs-measured for each. Set `CAPE_BENCH_SCALE=quick` to
//! run the figure harnesses at reduced input sizes (same shapes, faster).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cape_baseline::MulticoreModel;
use cape_core::CapeConfig;
use cape_workloads::{run_cape, BaselineRun, CapeRun, Workload};

/// One workload evaluated on one CAPE configuration plus its baseline.
#[derive(Debug)]
pub struct Measurement {
    /// Workload name.
    pub name: &'static str,
    /// CAPE run.
    pub cape: CapeRun,
    /// Baseline single-core run.
    pub baseline: BaselineRun,
}

impl Measurement {
    /// Runs a workload on `config` and its baseline, asserting that both
    /// implementations produced identical results.
    pub fn take(workload: &dyn Workload, config: &CapeConfig) -> Self {
        let cape = run_cape(workload, config);
        let baseline = workload.run_baseline();
        assert_eq!(
            cape.digest,
            baseline.digest,
            "{}: CAPE and baseline results diverge",
            workload.name()
        );
        Self {
            name: workload.name(),
            cape,
            baseline,
        }
    }

    /// Speedup of the CAPE run over the single-core baseline.
    pub fn speedup_1core(&self) -> f64 {
        self.baseline.report.time_ms() / self.cape.report.time_ms()
    }

    /// Speedup over an `n`-core baseline (Amdahl + bandwidth model).
    pub fn speedup_ncore(&self, cores: u32) -> f64 {
        let multi = MulticoreModel::new(self.baseline.parallel_fraction);
        multi.time_ms(&self.baseline.report, cores) / self.cape.report.time_ms()
    }
}

/// The fusion-gate workload: a Phoenix-style string-match scan sized
/// for a 4k-chain machine, shared by the `fused_window` Criterion group
/// and the `fusion_smoke` release gate.
///
/// The text window is loaded once and stays CSB-resident; every
/// iteration then runs *exactly one fusion window* (32 fusible ops) of
/// short-microprogram work — per pattern: scalar-xor, low-byte mask,
/// equality probe, id broadcast, masked merge, coverage accumulate —
/// followed by a shift-xor rolling-hash step that evolves the text so
/// iterations are not redundant. This is the regime fusion targets: the
/// per-op broadcast plans are 1–34 steps, so per-dispatch overhead (not
/// bit-serial compute) dominates the unfused path. All scalar operands
/// are loop-invariant, so each iteration replays the same
/// `(op, sew)` sequence and the fused-window cache amortizes the fusion
/// pass across iterations. Reductions and stores happen once, after the
/// loop.
pub mod fusion {
    use cape_core::CapeConfig;
    use cape_isa::{Program, Reg, Sew, VAluOp, VReg};
    use cape_mem::MainMemory;

    /// Chains in the gate machine (`max_vl` = 4096 × 32 = 131 072 —
    /// the paper's CAPE131k scale point).
    pub const CHAINS: usize = 4096;
    /// Input base for the resident text words.
    pub const IN_TEXT: u64 = 0x10_0000;
    /// Output base: per-element matched-pattern ids, then the coverage
    /// checksum.
    pub const OUT: u64 = 0x30_0000;
    /// Pattern keys the scan searches for — loop-invariant scalars. An
    /// element matches pattern `k` when its low byte equals the key's
    /// (the xor of text and key vanishes under the `0xff` mask).
    pub const PATTERNS: [u32; 5] = [
        0x6b65_7931,
        0x7061_7437,
        0x3133_3700,
        0x6361_7065,
        0x002a_2a2a,
    ];

    /// The gate machine: `CapeConfig::tiny` geometry at 4k chains, so
    /// the whole dataset is one full vector window.
    pub fn config() -> CapeConfig {
        CapeConfig::tiny(CHAINS)
    }

    /// Text words for a machine with `max_vl` lanes (one full window).
    pub fn input(max_vl: usize) -> MainMemory {
        let mut mem = MainMemory::new();
        let text: Vec<u32> = (0..max_vl as u32)
            .map(|i| i.wrapping_mul(2_654_435_761).rotate_right(7))
            .collect();
        mem.write_u32_slice(IN_TEXT, &text);
        mem
    }

    /// The kernel: `iters` scan sweeps of `max_vl` resident text words
    /// against [`PATTERNS`], then one reduction + vector store.
    ///
    /// Each sweep emits exactly 32 fusible vector ops — 5 patterns ×
    /// (xor.vx, and.vx, vmseq.vx, vmv.v.x, vmerge, vor.vv) plus the
    /// two-op rolling-hash text evolution — so with the default
    /// `fusion_window = 32` every iteration is one whole window and the
    /// window cache hits from the second sweep on.
    pub fn phoenix_loop(max_vl: usize, iters: usize) -> Program {
        let mut p = Program::builder();
        p.li(Reg::S0, max_vl as i64);
        p.li(Reg::S1, IN_TEXT as i64);
        p.li(Reg::S3, OUT as i64);
        p.li(Reg::S4, iters as i64);
        // Loop-invariant scalars, set once: pattern keys in A0-A4, the
        // low-byte mask in A5, pattern ids (k + 1) in S5-S9.
        let keys = [Reg::A0, Reg::A1, Reg::A2, Reg::A3, Reg::A4];
        let ids = [Reg::S5, Reg::S6, Reg::S7, Reg::S8, Reg::S9];
        for (k, pat) in PATTERNS.iter().enumerate() {
            p.li(keys[k], i64::from(*pat));
            p.li(ids[k], k as i64 + 1);
        }
        p.li(Reg::A5, 0xff);
        p.vsetvli(Reg::T0, Reg::S0);
        // The id/coverage initializers fuse into their own short window;
        // the text load is a barrier, so the loop starts with an empty
        // buffer and each sweep aligns exactly with one fusion window.
        p.vmv_vx(VReg::V11, Reg::ZERO); // matched-pattern ids
        p.vmv_vx(VReg::V12, Reg::ZERO); // coverage accumulator
        p.vle32(VReg::V1, Reg::S1); // text, resident
        p.label("sweep");
        for k in 0..PATTERNS.len() {
            p.vop_vx(VAluOp::Xor, VReg::V3, VReg::V1, keys[k]);
            p.vop_vx(VAluOp::And, VReg::V5, VReg::V3, Reg::A5);
            p.vmseq_vx(VReg::V0, VReg::V5, Reg::ZERO);
            p.vmv_vx(VReg::V6, ids[k]);
            p.vmerge(VReg::V11, VReg::V11, VReg::V6);
            p.vop_vv(VAluOp::Or, VReg::V12, VReg::V12, VReg::V3);
        }
        // Rolling-hash evolution: text ^= text << 1, so successive
        // sweeps scan fresh data (scalars stay loop-invariant).
        p.vsll_vi(VReg::V4, VReg::V1, 1);
        p.vop_vv(VAluOp::Xor, VReg::V1, VReg::V1, VReg::V4);
        p.addi(Reg::S4, Reg::S4, -1);
        p.bnez(Reg::S4, "sweep");
        // Barrier tail: store the ids, reduce the coverage checksum.
        p.vse32(VReg::V11, Reg::S3);
        p.vmv_vx(VReg::V13, Reg::ZERO);
        p.vredsum(VReg::V13, VReg::V12, VReg::V13);
        p.vmv_xs(Reg::T2, VReg::V13);
        p.li(Reg::A6, (OUT + 4 * max_vl as u64) as i64);
        p.sw(Reg::T2, 0, Reg::A6);
        p.halt();
        p.build().expect("fusion gate kernel builds")
    }

    /// FNV-1a digest of the kernel's output region.
    pub fn digest(mem: &MainMemory, max_vl: usize) -> u64 {
        super::fnv1a_words(mem.read_u32_slice(OUT, max_vl + 1))
    }

    /// Mixed-SEW variant of [`phoenix_loop`]: the first four pattern
    /// groups scan at e8 (the low-byte probe only needs a byte), then an
    /// unchanged-`vl` `vsetvli` retargets to e16 *mid-sweep* for the
    /// fifth group and the rolling-hash evolution. Still exactly 32
    /// fusible ops per sweep, so with `fusion_window = 32` every sweep
    /// is one whole window **containing both element widths** — the SEW
    /// changes join the window as no-ops instead of flushing it.
    ///
    /// The fifth group is a *two-stage* probe: a coarse low-byte
    /// equality test immediately superseded by the exact match. The
    /// coarse probe's tag store is dead — overwritten by the exact
    /// probe's `Set` before anything reads the mask — which only the v2
    /// window compiler's tag-aware liveness pass can prove, so this
    /// kernel is also the dead-store gate: `fusion_reorder = true` must
    /// retire strictly more stores than the in-order pipeline on it.
    pub fn phoenix_loop_mixed(max_vl: usize, iters: usize) -> Program {
        let mut p = Program::builder();
        p.li(Reg::S0, max_vl as i64);
        p.li(Reg::S1, IN_TEXT as i64);
        p.li(Reg::S3, OUT as i64);
        p.li(Reg::S4, iters as i64);
        let keys = [Reg::A0, Reg::A1, Reg::A2, Reg::A3, Reg::A4];
        let ids = [Reg::S5, Reg::S6, Reg::S7, Reg::S8, Reg::S9];
        for (k, pat) in PATTERNS.iter().enumerate() {
            p.li(keys[k], i64::from(*pat));
            p.li(ids[k], k as i64 + 1);
        }
        p.li(Reg::A5, 0xff);
        p.vsetvli(Reg::T0, Reg::S0);
        p.vmv_vx(VReg::V11, Reg::ZERO);
        p.vmv_vx(VReg::V12, Reg::ZERO);
        p.vle32(VReg::V1, Reg::S1);
        p.label("sweep");
        // Same vl, narrower element: joins the pending window (empty
        // here) as a no-op rather than ending it.
        p.vsetvli_sew(Reg::T1, Reg::S0, Sew::E8);
        for k in 0..4 {
            p.vop_vx(VAluOp::Xor, VReg::V3, VReg::V1, keys[k]);
            p.vop_vx(VAluOp::And, VReg::V5, VReg::V3, Reg::A5);
            p.vmseq_vx(VReg::V0, VReg::V5, Reg::ZERO);
            p.vmv_vx(VReg::V6, ids[k]);
            p.vmerge(VReg::V11, VReg::V11, VReg::V6);
            p.vop_vv(VAluOp::Or, VReg::V12, VReg::V12, VReg::V3);
        }
        // Mid-window retarget: 24 e8 ops are already buffered; this
        // must NOT flush them (vl and vstart are provably unchanged).
        p.vsetvli_sew(Reg::T1, Reg::S0, Sew::E16);
        {
            let k = 4;
            p.vop_vx(VAluOp::Xor, VReg::V3, VReg::V1, keys[k]);
            // Two-stage probe: the coarse low-byte test's mask is
            // overwritten by the exact match before anything reads it —
            // a dead match store only tag-aware liveness retires.
            p.vmseq_vx(VReg::V0, VReg::V3, Reg::A5);
            p.vmseq_vx(VReg::V0, VReg::V3, Reg::ZERO);
            p.vmv_vx(VReg::V6, ids[k]);
            p.vmerge(VReg::V11, VReg::V11, VReg::V6);
            p.vop_vv(VAluOp::Or, VReg::V12, VReg::V12, VReg::V3);
        }
        p.vsll_vi(VReg::V4, VReg::V1, 1);
        p.vop_vv(VAluOp::Xor, VReg::V1, VReg::V1, VReg::V4);
        p.addi(Reg::S4, Reg::S4, -1);
        p.bnez(Reg::S4, "sweep");
        // Barrier tail at full width (again an unchanged-`vl` no-op).
        p.vsetvli_sew(Reg::T1, Reg::S0, Sew::E32);
        p.vse32(VReg::V11, Reg::S3);
        p.vmv_vx(VReg::V13, Reg::ZERO);
        p.vredsum(VReg::V13, VReg::V12, VReg::V13);
        p.vmv_xs(Reg::T2, VReg::V13);
        p.li(Reg::A6, (OUT + 4 * max_vl as u64) as i64);
        p.sw(Reg::T2, 0, Reg::A6);
        p.halt();
        p.build().expect("mixed-SEW fusion kernel builds")
    }
}

/// FNV-1a digest over a word sequence.
pub fn fnv1a_words(words: impl IntoIterator<Item = u32>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Geometric mean of a non-empty slice.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of nothing");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// True when the harness should run at reduced scale.
pub fn quick_scale() -> bool {
    std::env::var("CAPE_BENCH_SCALE").is_ok_and(|v| v == "quick")
}

/// Prints a rule-delimited section header.
pub fn section(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_cross_checks_digests() {
        let w = cape_workloads::micro::Vvadd { n: 300 };
        let m = Measurement::take(&w, &CapeConfig::tiny(2));
        assert!(m.speedup_1core() > 0.0);
        assert!(m.speedup_ncore(2) > 0.0);
    }
}

//! Shared helpers for the table/figure regeneration binaries.
//!
//! Every binary prints a self-contained report to stdout; EXPERIMENTS.md
//! records paper-vs-measured for each. Set `CAPE_BENCH_SCALE=quick` to
//! run the figure harnesses at reduced input sizes (same shapes, faster).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cape_baseline::MulticoreModel;
use cape_core::CapeConfig;
use cape_workloads::{run_cape, BaselineRun, CapeRun, Workload};

/// One workload evaluated on one CAPE configuration plus its baseline.
#[derive(Debug)]
pub struct Measurement {
    /// Workload name.
    pub name: &'static str,
    /// CAPE run.
    pub cape: CapeRun,
    /// Baseline single-core run.
    pub baseline: BaselineRun,
}

impl Measurement {
    /// Runs a workload on `config` and its baseline, asserting that both
    /// implementations produced identical results.
    pub fn take(workload: &dyn Workload, config: &CapeConfig) -> Self {
        let cape = run_cape(workload, config);
        let baseline = workload.run_baseline();
        assert_eq!(
            cape.digest,
            baseline.digest,
            "{}: CAPE and baseline results diverge",
            workload.name()
        );
        Self {
            name: workload.name(),
            cape,
            baseline,
        }
    }

    /// Speedup of the CAPE run over the single-core baseline.
    pub fn speedup_1core(&self) -> f64 {
        self.baseline.report.time_ms() / self.cape.report.time_ms()
    }

    /// Speedup over an `n`-core baseline (Amdahl + bandwidth model).
    pub fn speedup_ncore(&self, cores: u32) -> f64 {
        let multi = MulticoreModel::new(self.baseline.parallel_fraction);
        multi.time_ms(&self.baseline.report, cores) / self.cape.report.time_ms()
    }
}

/// Geometric mean of a non-empty slice.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of nothing");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// True when the harness should run at reduced scale.
pub fn quick_scale() -> bool {
    std::env::var("CAPE_BENCH_SCALE").is_ok_and(|v| v == "quick")
}

/// Prints a rule-delimited section header.
pub fn section(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_cross_checks_digests() {
        let w = cape_workloads::micro::Vvadd { n: 300 };
        let m = Measurement::take(&w, &CapeConfig::tiny(2));
        assert!(m.speedup_1core() > 0.0);
        assert!(m.speedup_ncore(2) > 0.0);
    }
}
